//! The per-rank communicator: point-to-point mesh, all-to-all exchange,
//! pairwise bulk exchange, and barriers — with Section 3.4's metrics
//! recorded on every operation.

use crate::barrier::SenseBarrier;
use crate::counters::{CommStats, Phase, RemapRecord};
use crate::fault::{fault_hit, FailurePhase, FaultClass, FaultConfig, RankFailure};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use obs::{TracePhase, TraceSink};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Transfer regime for remaps (Section 5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageMode {
    /// One key per message — the LogP regime. Every element costs a message
    /// (`M = V`), which is why Table 5.3 shows ≈13 µs/key of communication.
    Short,
    /// One packed message per destination — the LogGP regime enabled by the
    /// pack/unpack machinery of Section 3.3.
    Long,
}

#[derive(Clone)]
pub(crate) enum Payload<K> {
    /// Announces how many single-element messages follow (short mode).
    Header(usize),
    /// A packed long message.
    Data(Vec<K>),
    /// One element in short mode. Fixed-size — travels without a heap
    /// allocation, unlike the `Data(vec![k])` encoding it replaced.
    Key(K),
    /// Control metadata (histograms, counts) — always one message
    /// regardless of mode, like the small bookkeeping messages real
    /// implementations piggyback on the network.
    Meta(Vec<u64>),
    /// Fault-layer control: confirms first delivery of the given sequence
    /// number. Control messages are exempt from fault injection (the
    /// injected network loses *data*; the recovery protocol itself rides
    /// the reliable channel, like TCP's control bits over raw IP here).
    Ack(u64),
    /// Fault-layer control: the receiver is missing every sequence number
    /// from the given one onward — retransmit them.
    Nack(u64),
}

impl<K> Payload<K> {
    /// Control-plane payloads carry no sequence number and bypass both
    /// fault injection and the receiver's reorder buffer.
    fn is_control(&self) -> bool {
        matches!(self, Payload::Ack(_) | Payload::Nack(_))
    }
}

pub(crate) struct Envelope<K> {
    src: usize,
    /// Per-link sequence number assigned at send time; 0 for control
    /// payloads and for every message on a fault-free machine.
    seq: u64,
    payload: Payload<K>,
}

/// Per-rank state of the fault layer: the sender side's sequence counters
/// and retransmission buffers, the receiver side's reorder buffers, and
/// the validated configuration. Boxed inside [`Comm`] and `None` on a
/// fault-free machine, so the legacy paths pay one branch and nothing
/// else.
struct FaultSession<K> {
    cfg: FaultConfig,
    /// Next sequence number per destination link.
    next_seq: Vec<u64>,
    /// Sent-but-unacknowledged payloads per destination, keyed by seq —
    /// the retransmission buffer the nack path replays from.
    unacked: Vec<BTreeMap<u64, Payload<K>>>,
    /// Reorder injection: at most one held-back message per destination,
    /// emitted after its successor (or at the end of the send phase).
    stash: Vec<Option<(u64, Payload<K>)>>,
    /// Next sequence number to deliver per source link.
    next_deliver: Vec<u64>,
    /// Out-of-order arrivals per source, keyed by seq (the reorder
    /// buffer; doubles as the duplicate-suppression window).
    inbox: Vec<BTreeMap<u64, Payload<K>>>,
}

impl<K> FaultSession<K> {
    fn new(cfg: FaultConfig, procs: usize) -> Self {
        cfg.validate();
        FaultSession {
            cfg,
            next_seq: vec![0; procs],
            unacked: (0..procs).map(|_| BTreeMap::new()).collect(),
            stash: (0..procs).map(|_| None).collect(),
            next_deliver: vec![0; procs],
            inbox: (0..procs).map(|_| BTreeMap::new()).collect(),
        }
    }
}

/// A rank's endpoint into the SPMD machine.
///
/// Created by [`crate::run_spmd`]; one per thread. All operations are
/// *collective over the set of ranks that call them* — `exchange` and
/// `barrier` must be called by every rank, `sendrecv` by both partners —
/// mirroring Split-C's bulk operations.
pub struct Comm<K> {
    rank: usize,
    procs: usize,
    mode: MessageMode,
    senders: Vec<Sender<Envelope<K>>>,
    receiver: Receiver<Envelope<K>>,
    barrier: Arc<SenseBarrier>,
    /// Early arrivals buffered per source rank (channels are shared FIFOs;
    /// a fast sender's messages may land before we ask for them).
    pending: Vec<VecDeque<Payload<K>>>,
    /// Recycled message buffers for the flat-path operations. Buffers
    /// received from peers are drained and parked here, then reused for
    /// this rank's next sends — after a warm-up round the pool reaches a
    /// steady state and [`Comm::alltoallv`] allocates nothing.
    pool: Vec<Vec<K>>,
    /// Diagnostic: pool-miss count (see [`Comm::pool_misses`]).
    pool_misses: u64,
    /// Metrics for this rank; harvested by the runtime when the program
    /// returns.
    pub stats: CommStats,
    /// Span recorder for this rank; disabled (one branch per call) unless
    /// the machine was started with tracing on. Every timed operation
    /// records a span against the same `Instant`s it charges to `stats`,
    /// so per-phase span sums reproduce the stopwatch totals exactly.
    pub trace: TraceSink,
    /// Fault-injection session; `None` on a fault-free machine, in which
    /// case every send/recv/barrier takes its legacy path after a single
    /// branch (the zero-overhead-off guarantee).
    fault: Option<Box<FaultSession<K>>>,
}

impl<K: Clone + Send + 'static> Comm<K> {
    pub(crate) fn new(
        rank: usize,
        mode: MessageMode,
        senders: Vec<Sender<Envelope<K>>>,
        receiver: Receiver<Envelope<K>>,
        barrier: Arc<SenseBarrier>,
        trace: TraceSink,
        fault: FaultConfig,
    ) -> Self {
        let procs = senders.len();
        Comm {
            rank,
            procs,
            mode,
            senders,
            receiver,
            barrier,
            pending: (0..procs).map(|_| VecDeque::new()).collect(),
            pool: Vec::new(),
            pool_misses: 0,
            stats: CommStats::new(),
            trace,
            fault: fault
                .enabled()
                .then(|| Box::new(FaultSession::new(fault, procs))),
        }
    }

    /// This rank's id, `0 .. procs`.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the machine (`P`).
    #[must_use]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The transfer regime this machine was started with.
    #[must_use]
    pub fn mode(&self) -> MessageMode {
        self.mode
    }

    /// Run `f` and charge its wall-clock to `phase`.
    pub fn timed<T>(&mut self, phase: Phase, f: impl FnOnce(&mut Self) -> T) -> T {
        let t0 = Instant::now();
        let out = f(self);
        let t1 = Instant::now();
        self.stats.add_time(phase, t1.duration_since(t0));
        self.trace.span(phase.into(), t0, t1);
        out
    }

    /// Record `count` uses of local kernel `name` on this rank: into the
    /// stats (for the R/V/M report) and onto the trace timeline (so a
    /// Chrome trace shows which kernel served the phase). Zero counts are
    /// free.
    pub fn note_kernel(&mut self, name: &'static str, count: u64) {
        if count == 0 {
            return;
        }
        self.stats.note_kernel(name, count);
        self.trace.kernel(name, count, Instant::now());
    }

    /// Drain the sort layer's thread-local kernel tally into this rank's
    /// stats and trace. Drivers call this after each compute phase; the
    /// tally is thread-local and SPMD ranks are threads, so the drained
    /// counts are exactly this rank's since the previous drain.
    pub fn drain_kernel_tally(&mut self) {
        for (name, count) in local_sorts::dispatch::take_tally() {
            self.note_kernel(name, count);
        }
    }

    /// Discard any kernel counts a *previous* program left in this machine
    /// thread's tally. Drivers call this once on entry so counts from an
    /// earlier job on a pooled (persistent) machine are not attributed to
    /// this one.
    pub fn reset_kernel_tally(&mut self) {
        local_sorts::dispatch::clear_tally();
    }

    /// Wait for all ranks; time spent is charged to [`Phase::Barrier`].
    ///
    /// Under fault injection with a watchdog, a barrier that stays closed
    /// past the watchdog duration fails the rank with a structured
    /// [`RankFailure`] instead of deadlocking. By the time a rank reaches
    /// a barrier every collective it ran has drained its
    /// acknowledgements, so a rank parked here owes its peers nothing —
    /// timing out cannot strand anyone's recovery.
    pub fn barrier(&mut self) {
        let t0 = Instant::now();
        let watchdog = self.fault.as_ref().and_then(|s| s.cfg.watchdog);
        match watchdog {
            None => {
                self.barrier.wait();
            }
            Some(limit) => {
                if self.barrier.wait_timeout(limit).is_none() {
                    let t1 = Instant::now();
                    self.stats.add_time(Phase::Barrier, t1.duration_since(t0));
                    self.trace.span(TracePhase::Barrier, t0, t1);
                    self.fail(FailurePhase::Barrier, None, limit);
                }
            }
        }
        let t1 = Instant::now();
        self.stats.add_time(Phase::Barrier, t1.duration_since(t0));
        self.trace.span(TracePhase::Barrier, t0, t1);
    }

    /// Close out a communication step at `t1`: emit its counter event
    /// (advancing the trace's remap index) and push its [`RemapRecord`].
    fn finish_remap(&mut self, record: RemapRecord, t1: Instant) {
        self.trace.counter(record.into(), t1);
        self.stats.push_remap(record);
    }

    /// All-to-all personalized exchange: `outgoing[dst]` is delivered to
    /// rank `dst`; the returned vector holds `incoming[src]` from each rank
    /// (`incoming[self.rank()]` is `outgoing[self.rank()]`, untouched).
    ///
    /// One call is one *communication step* — a [`RemapRecord`] is pushed,
    /// and transfer wall-clock is charged to [`Phase::Transfer`]. In
    /// [`MessageMode::Short`] every element travels as its own message; in
    /// [`MessageMode::Long`] each non-empty destination gets one message.
    ///
    /// # Panics
    /// Panics if `outgoing.len() != self.procs()` or a peer disappeared.
    pub fn exchange(&mut self, mut outgoing: Vec<Vec<K>>) -> Vec<Vec<K>> {
        assert_eq!(
            outgoing.len(),
            self.procs,
            "one outgoing buffer per rank required"
        );
        self.fault_collective_begin();
        let t0 = Instant::now();
        let mut record = RemapRecord::default();
        let mut partners = 0u64;

        // Keep own slice aside; send everything else before receiving so
        // the exchange cannot deadlock (channels are unbounded).
        let own = std::mem::take(&mut outgoing[self.rank]);
        record.elements_kept = own.len() as u64;

        for (dst, data) in outgoing.into_iter().enumerate() {
            if dst == self.rank {
                continue;
            }
            let len = data.len();
            if len > 0 {
                partners += 1;
                record.elements_sent += len as u64;
            }
            match self.mode {
                MessageMode::Long => {
                    if len > 0 {
                        record.messages_sent += 1;
                    }
                    self.send_to(dst, Payload::Data(data));
                }
                MessageMode::Short => {
                    record.messages_sent += len as u64;
                    self.send_to(dst, Payload::Header(len));
                    for k in data {
                        self.send_to(dst, Payload::Key(k));
                    }
                }
            }
        }
        self.fault_sends_done();

        let mut incoming: Vec<Vec<K>> = (0..self.procs).map(|_| Vec::new()).collect();
        incoming[self.rank] = own;
        let me = self.rank;
        for src in (0..self.procs).filter(|&s| s != me) {
            let received = match self.mode {
                MessageMode::Long => match self.recv_payload(src) {
                    Payload::Data(v) => v,
                    _ => panic!("unexpected payload in long-message mode"),
                },
                MessageMode::Short => {
                    let count = match self.recv_payload(src) {
                        Payload::Header(c) => c,
                        _ => panic!("missing header in short-message mode"),
                    };
                    let mut buf = Vec::with_capacity(count);
                    for _ in 0..count {
                        match self.recv_payload(src) {
                            Payload::Key(k) => buf.push(k),
                            _ => panic!("unexpected payload after header"),
                        }
                    }
                    buf
                }
            };
            record.elements_received += received.len() as u64;
            incoming[src] = received;
        }
        self.fault_flush();

        record.group_size = partners + 1;
        let t1 = Instant::now();
        self.stats.add_time(Phase::Transfer, t1.duration_since(t0));
        self.trace.span(TracePhase::Transfer, t0, t1);
        self.finish_remap(record, t1);
        incoming
    }

    /// Pairwise bulk exchange with `partner`: send `data`, receive the
    /// partner's buffer. This is the hypercube-step primitive of the
    /// blocked-merge baseline (Section 5.3), where at each remote step
    /// "processors communicate in pairs … each processor sends one big
    /// message of size n".
    pub fn sendrecv(&mut self, partner: usize, data: Vec<K>) -> Vec<K> {
        assert_ne!(partner, self.rank, "cannot sendrecv with self");
        self.fault_collective_begin();
        let t0 = Instant::now();
        let mut record = RemapRecord {
            elements_sent: data.len() as u64,
            group_size: 2,
            ..Default::default()
        };
        match self.mode {
            MessageMode::Long => {
                record.messages_sent = u64::from(!data.is_empty());
                self.send_to(partner, Payload::Data(data));
            }
            MessageMode::Short => {
                record.messages_sent = data.len() as u64;
                self.send_to(partner, Payload::Header(data.len()));
                for k in data {
                    self.send_to(partner, Payload::Key(k));
                }
            }
        }
        self.fault_sends_done();
        let received = match self.mode {
            MessageMode::Long => match self.recv_payload(partner) {
                Payload::Data(v) => v,
                _ => panic!("unexpected payload in long-message mode"),
            },
            MessageMode::Short => {
                let count = match self.recv_payload(partner) {
                    Payload::Header(c) => c,
                    _ => panic!("missing header in short-message mode"),
                };
                let mut buf = Vec::with_capacity(count);
                for _ in 0..count {
                    match self.recv_payload(partner) {
                        Payload::Key(k) => buf.push(k),
                        _ => panic!("unexpected payload after header"),
                    }
                }
                buf
            }
        };
        self.fault_flush();
        record.elements_received = received.len() as u64;
        let t1 = Instant::now();
        self.stats.add_time(Phase::Transfer, t1.duration_since(t0));
        self.trace.span(TracePhase::Transfer, t0, t1);
        self.finish_remap(record, t1);
        received
    }

    /// Flat-buffer all-to-all personalized exchange, MPI `Alltoallv`-style.
    ///
    /// `sendbuf` holds the data for all destinations concatenated in rank
    /// order: rank `d`'s segment is `send_counts[..d].sum()..` with length
    /// `send_counts[d]`. `recvbuf` is cleared and filled with the arriving
    /// segments in ascending source order (`recv_counts` gives each
    /// segment's length, which every rank can compute from the shared
    /// remap plan — so empty destinations exchange no message at all).
    ///
    /// This is the zero-allocation counterpart of [`Comm::exchange`],
    /// implemented over [`Comm::alltoallv_with`]: sends are staged in
    /// recycled buffers from the communicator's pool, and received buffers
    /// are drained into `recvbuf` and recycled. After a warm-up round,
    /// steady state performs no heap allocation. The [`RemapRecord`]
    /// pushed is identical to what `exchange` would record for the same
    /// traffic, in either [`MessageMode`].
    ///
    /// # Panics
    /// Panics if the count slices are not `procs` long, if `sendbuf` does
    /// not match `send_counts`, or if a peer sends a mismatched segment.
    pub fn alltoallv(
        &mut self,
        sendbuf: &[K],
        send_counts: &[usize],
        recvbuf: &mut Vec<K>,
        recv_counts: &[usize],
    ) where
        K: Clone,
    {
        assert_eq!(
            send_counts.iter().sum::<usize>(),
            sendbuf.len(),
            "send counts must cover the send buffer exactly"
        );
        recvbuf.clear();
        recvbuf.reserve(recv_counts.iter().sum::<usize>());
        // `fill` runs in ascending destination order and skipped (empty)
        // destinations have zero-length segments, so a running cursor
        // recovers each destination's displacement without a table.
        let mut cursor = 0usize;
        // The drain copy here is message *assembly* into the caller's flat
        // receive buffer, not an algorithmic unpack pass, so it is charged
        // to `Phase::Transfer` (the scatter in a remap's `apply_into` is
        // what Unpack measures).
        self.alltoallv_inner(
            send_counts,
            recv_counts,
            |dst, buf| {
                buf.extend_from_slice(&sendbuf[cursor..cursor + send_counts[dst]]);
                cursor += send_counts[dst];
            },
            |_src, segment| recvbuf.extend_from_slice(segment),
            Phase::Transfer,
        );
    }

    /// Zero-copy planned all-to-all: the engine under [`Comm::alltoallv`],
    /// exposed for callers that can pack and unpack in place.
    ///
    /// For every destination with a non-zero `send_counts` entry (plus this
    /// rank itself), `fill(dst, buf)` is invoked — in ascending `dst` order
    /// — to append exactly `send_counts[dst]` elements to a recycled
    /// message buffer, which is then moved into the channel without any
    /// further copy. Arriving segments are handed to `drain(src, segment)`
    /// in ascending `src` order (own segment included, `recv_counts[src]`
    /// elements each) and the buffers recycled. Steady state therefore
    /// performs zero heap allocations *and* zero intermediate copies:
    /// elements are touched exactly twice, once gathering into the message
    /// and once scattering out of it.
    ///
    /// Wall-clock inside `fill` is charged to [`Phase::Pack`], inside
    /// `drain` to [`Phase::Unpack`], and the remainder of the call to
    /// [`Phase::Transfer`]. The [`RemapRecord`] pushed is identical to
    /// [`Comm::exchange`] for the same traffic, in either [`MessageMode`].
    ///
    /// # Panics
    /// Panics if the count slices are not `procs` long or a peer sends a
    /// mismatched segment.
    pub fn alltoallv_with(
        &mut self,
        send_counts: &[usize],
        recv_counts: &[usize],
        fill: impl FnMut(usize, &mut Vec<K>),
        drain: impl FnMut(usize, &[K]),
    ) where
        K: Clone,
    {
        self.alltoallv_inner(send_counts, recv_counts, fill, drain, Phase::Unpack);
    }

    /// Shared engine behind [`Comm::alltoallv`] and [`Comm::alltoallv_with`];
    /// `drain_phase` picks where the drain time is charged.
    fn alltoallv_inner(
        &mut self,
        send_counts: &[usize],
        recv_counts: &[usize],
        mut fill: impl FnMut(usize, &mut Vec<K>),
        mut drain: impl FnMut(usize, &[K]),
        drain_phase: Phase,
    ) where
        K: Clone,
    {
        assert_eq!(send_counts.len(), self.procs, "one send count per rank");
        assert_eq!(recv_counts.len(), self.procs, "one recv count per rank");
        self.fault_collective_begin();
        let drain_trace: TracePhase = drain_phase.into();
        let t0 = Instant::now();
        // Trace spans are *segmented*: `cursor` tracks the end of the last
        // pack/drain interval, and the gaps between intervals are recorded
        // as Transfer spans. The very same `Instant`s feed both the spans
        // and the stopwatch sums below, so per-phase span totals equal the
        // `CommStats` phase times exactly — no extra clock reads.
        let mut cursor = t0;
        let mut pack = std::time::Duration::ZERO;
        let mut unpack = std::time::Duration::ZERO;
        let mut record = RemapRecord {
            elements_kept: send_counts[self.rank] as u64,
            ..Default::default()
        };
        let mut partners = 0u64;

        // Send phase: pack each segment straight into a recycled message
        // buffer and move it into the channel.
        let mut own_buf: Option<Vec<K>> = None;
        for (dst, &len) in send_counts.iter().enumerate() {
            if len == 0 && dst != self.rank {
                continue; // both sides know: no message at all
            }
            let mut buf = self.pooled();
            let tp = Instant::now();
            fill(dst, &mut buf);
            let tp1 = Instant::now();
            pack += tp1.duration_since(tp);
            self.trace.span(TracePhase::Transfer, cursor, tp);
            self.trace.span(TracePhase::Pack, tp, tp1);
            cursor = tp1;
            debug_assert_eq!(buf.len(), len, "fill must produce the planned segment");
            if dst == self.rank {
                own_buf = Some(buf);
                continue;
            }
            partners += 1;
            record.elements_sent += len as u64;
            match self.mode {
                MessageMode::Long => {
                    record.messages_sent += 1;
                    self.send_to(dst, Payload::Data(buf));
                }
                MessageMode::Short => {
                    record.messages_sent += len as u64;
                    self.send_to(dst, Payload::Header(len));
                    for k in &buf {
                        self.send_to(dst, Payload::Key(k.clone()));
                    }
                    self.recycle(buf);
                }
            }
        }
        self.fault_sends_done();

        // Receive phase: consume segments in ascending source order.
        for (src, &len) in recv_counts.iter().enumerate() {
            if src == self.rank {
                let buf = own_buf.take().unwrap_or_default();
                let tu = Instant::now();
                drain(src, &buf);
                let tu1 = Instant::now();
                unpack += tu1.duration_since(tu);
                self.trace.span(TracePhase::Transfer, cursor, tu);
                self.trace.span(drain_trace, tu, tu1);
                cursor = tu1;
                self.recycle(buf);
                continue;
            }
            if len == 0 {
                continue;
            }
            record.elements_received += len as u64;
            match self.mode {
                MessageMode::Long => match self.recv_payload(src) {
                    Payload::Data(v) => {
                        assert_eq!(v.len(), len, "peer sent a mismatched segment");
                        let tu = Instant::now();
                        drain(src, &v);
                        let tu1 = Instant::now();
                        unpack += tu1.duration_since(tu);
                        self.trace.span(TracePhase::Transfer, cursor, tu);
                        self.trace.span(drain_trace, tu, tu1);
                        cursor = tu1;
                        self.recycle(v);
                    }
                    _ => panic!("unexpected payload in long-message mode"),
                },
                MessageMode::Short => {
                    match self.recv_payload(src) {
                        Payload::Header(c) => {
                            assert_eq!(c, len, "peer sent a mismatched segment")
                        }
                        _ => panic!("missing header in short-message mode"),
                    }
                    let mut buf = self.pooled();
                    buf.reserve(len);
                    for _ in 0..len {
                        match self.recv_payload(src) {
                            Payload::Key(k) => buf.push(k),
                            _ => panic!("unexpected payload after header"),
                        }
                    }
                    let tu = Instant::now();
                    drain(src, &buf);
                    let tu1 = Instant::now();
                    unpack += tu1.duration_since(tu);
                    self.trace.span(TracePhase::Transfer, cursor, tu);
                    self.trace.span(drain_trace, tu, tu1);
                    cursor = tu1;
                    self.recycle(buf);
                }
            }
        }
        self.fault_flush();

        record.group_size = partners + 1;
        let t1 = Instant::now();
        self.trace.span(TracePhase::Transfer, cursor, t1);
        self.stats.add_time(Phase::Pack, pack);
        self.stats.add_time(drain_phase, unpack);
        self.stats.add_time(
            Phase::Transfer,
            t1.duration_since(t0).saturating_sub(pack + unpack),
        );
        self.finish_remap(record, t1);
    }

    /// Flat-buffer all-to-all where receive sizes are *not* known in
    /// advance (e.g. sample sort's data buckets, whose sizes depend on the
    /// keys each peer holds). Like [`Comm::alltoallv`], but every
    /// destination gets a (possibly empty) message so lengths are
    /// discovered from the wire; the observed per-source counts — own
    /// segment included — are written into `recv_counts`.
    ///
    /// Counters match [`Comm::exchange`] exactly: empty messages are not
    /// counted, and `group_size` counts only non-empty send partners.
    ///
    /// # Panics
    /// Panics if `send_counts` does not have `procs` entries summing to
    /// `sendbuf.len()`.
    pub fn alltoallv_uncounted(
        &mut self,
        sendbuf: &[K],
        send_counts: &[usize],
        recvbuf: &mut Vec<K>,
        recv_counts: &mut Vec<usize>,
    ) where
        K: Clone,
    {
        assert_eq!(send_counts.len(), self.procs, "one send count per rank");
        assert_eq!(
            send_counts.iter().sum::<usize>(),
            sendbuf.len(),
            "send counts must cover the send buffer exactly"
        );
        self.fault_collective_begin();
        let t0 = Instant::now();
        let mut record = RemapRecord {
            elements_kept: send_counts[self.rank] as u64,
            ..Default::default()
        };
        let mut partners = 0u64;

        let mut offset = 0usize;
        let mut own = 0usize..0usize;
        for (dst, &len) in send_counts.iter().enumerate() {
            let segment = offset..offset + len;
            offset += len;
            if dst == self.rank {
                own = segment;
                continue;
            }
            if len > 0 {
                partners += 1;
                record.elements_sent += len as u64;
            }
            match self.mode {
                MessageMode::Long => {
                    if len > 0 {
                        record.messages_sent += 1;
                    }
                    let mut msg = self.pooled();
                    msg.extend_from_slice(&sendbuf[segment]);
                    self.send_to(dst, Payload::Data(msg));
                }
                MessageMode::Short => {
                    record.messages_sent += len as u64;
                    self.send_to(dst, Payload::Header(len));
                    for k in &sendbuf[segment] {
                        self.send_to(dst, Payload::Key(k.clone()));
                    }
                }
            }
        }
        self.fault_sends_done();

        recvbuf.clear();
        recv_counts.clear();
        for src in 0..self.procs {
            if src == self.rank {
                recv_counts.push(own.len());
                recvbuf.extend_from_slice(&sendbuf[own.clone()]);
                continue;
            }
            let len = match self.mode {
                MessageMode::Long => match self.recv_payload(src) {
                    Payload::Data(v) => {
                        recvbuf.extend_from_slice(&v);
                        let len = v.len();
                        self.recycle(v);
                        len
                    }
                    _ => panic!("unexpected payload in long-message mode"),
                },
                MessageMode::Short => {
                    let count = match self.recv_payload(src) {
                        Payload::Header(c) => c,
                        _ => panic!("missing header in short-message mode"),
                    };
                    recvbuf.reserve(count);
                    for _ in 0..count {
                        match self.recv_payload(src) {
                            Payload::Key(k) => recvbuf.push(k),
                            _ => panic!("unexpected payload after header"),
                        }
                    }
                    count
                }
            };
            record.elements_received += len as u64;
            recv_counts.push(len);
        }
        self.fault_flush();

        record.group_size = partners + 1;
        let t1 = Instant::now();
        self.stats.add_time(Phase::Transfer, t1.duration_since(t0));
        self.trace.span(TracePhase::Transfer, t0, t1);
        self.finish_remap(record, t1);
    }

    /// Allocation-free counterpart of [`Comm::sendrecv`]: send `sendbuf`
    /// to `partner`, receive the partner's buffer into `recvbuf` (cleared
    /// first). The send travels in a recycled pool buffer; the received
    /// buffer is drained and recycled. Pushes the same [`RemapRecord`] as
    /// `sendrecv`.
    ///
    /// # Panics
    /// Panics if `partner` is this rank or a peer disappeared.
    pub fn sendrecv_into(&mut self, partner: usize, sendbuf: &[K], recvbuf: &mut Vec<K>)
    where
        K: Clone,
    {
        assert_ne!(partner, self.rank, "cannot sendrecv with self");
        self.fault_collective_begin();
        let t0 = Instant::now();
        let mut record = RemapRecord {
            elements_sent: sendbuf.len() as u64,
            group_size: 2,
            ..Default::default()
        };
        match self.mode {
            MessageMode::Long => {
                record.messages_sent = u64::from(!sendbuf.is_empty());
                let mut msg = self.pooled();
                msg.extend_from_slice(sendbuf);
                self.send_to(partner, Payload::Data(msg));
            }
            MessageMode::Short => {
                record.messages_sent = sendbuf.len() as u64;
                self.send_to(partner, Payload::Header(sendbuf.len()));
                for k in sendbuf {
                    self.send_to(partner, Payload::Key(k.clone()));
                }
            }
        }
        self.fault_sends_done();
        recvbuf.clear();
        match self.mode {
            MessageMode::Long => match self.recv_payload(partner) {
                Payload::Data(v) => {
                    recvbuf.extend_from_slice(&v);
                    self.recycle(v);
                }
                _ => panic!("unexpected payload in long-message mode"),
            },
            MessageMode::Short => {
                let count = match self.recv_payload(partner) {
                    Payload::Header(c) => c,
                    _ => panic!("missing header in short-message mode"),
                };
                recvbuf.reserve(count);
                for _ in 0..count {
                    match self.recv_payload(partner) {
                        Payload::Key(k) => recvbuf.push(k),
                        _ => panic!("unexpected payload after header"),
                    }
                }
            }
        }
        self.fault_flush();
        record.elements_received = recvbuf.len() as u64;
        let t1 = Instant::now();
        self.stats.add_time(Phase::Transfer, t1.duration_since(t0));
        self.trace.span(TracePhase::Transfer, t0, t1);
        self.finish_remap(record, t1);
    }

    /// Number of times a flat-path send needed a fresh buffer because the
    /// recycling pool was empty. Stops growing once the pool reaches
    /// steady state — observable evidence of the zero-allocation claim.
    #[must_use]
    pub fn pool_misses(&self) -> u64 {
        self.pool_misses
    }

    /// Pop a recycled buffer, or allocate one on a pool miss.
    fn pooled(&mut self) -> Vec<K> {
        match self.pool.pop() {
            Some(buf) => buf,
            None => {
                self.pool_misses += 1;
                Vec::new()
            }
        }
    }

    /// Park a drained peer buffer for reuse by future sends. The pool is
    /// bounded so pathological traffic cannot hoard memory.
    fn recycle(&mut self, mut buf: Vec<K>) {
        if self.pool.len() < 2 * self.procs {
            buf.clear();
            self.pool.push(buf);
        }
    }

    /// All-to-all exchange of control metadata (e.g. the per-digit
    /// histograms of parallel radix sort). Metadata always travels as one
    /// message per destination, independent of [`MessageMode`]; the
    /// exchange is recorded as a communication step whose volume counts
    /// the `u64` words sent.
    pub fn exchange_meta(&mut self, mut outgoing: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        assert_eq!(
            outgoing.len(),
            self.procs,
            "one outgoing buffer per rank required"
        );
        self.fault_collective_begin();
        let t0 = Instant::now();
        let mut record = RemapRecord::default();
        let own = std::mem::take(&mut outgoing[self.rank]);
        record.elements_kept = own.len() as u64;
        for (dst, data) in outgoing.into_iter().enumerate() {
            if dst == self.rank {
                continue;
            }
            if !data.is_empty() {
                record.elements_sent += data.len() as u64;
                record.messages_sent += 1;
            }
            self.send_to(dst, Payload::Meta(data));
        }
        self.fault_sends_done();
        let mut incoming: Vec<Vec<u64>> = (0..self.procs).map(|_| Vec::new()).collect();
        incoming[self.rank] = own;
        let me = self.rank;
        for src in (0..self.procs).filter(|&s| s != me) {
            incoming[src] = match self.recv_payload(src) {
                Payload::Meta(v) => v,
                _ => panic!("expected metadata payload"),
            };
            record.elements_received += incoming[src].len() as u64;
        }
        self.fault_flush();
        record.group_size = self.procs as u64;
        let t1 = Instant::now();
        self.stats.add_time(Phase::Transfer, t1.duration_since(t0));
        self.trace.span(TracePhase::Transfer, t0, t1);
        self.finish_remap(record, t1);
        incoming
    }

    fn send_to(&mut self, dst: usize, payload: Payload<K>) {
        if self.fault.is_some() {
            self.send_faulty(dst, payload);
        } else {
            self.raw_send(dst, 0, payload);
        }
    }

    fn recv_payload(&mut self, src: usize) -> Payload<K> {
        if self.fault.is_some() {
            return self.recv_faulty(src);
        }
        loop {
            if let Some(p) = self.pending[src].pop_front() {
                return p;
            }
            let env = self
                .receiver
                .recv()
                .expect("all peers hung up while receiving");
            if env.src == src {
                return env.payload;
            }
            self.pending[env.src].push_back(env.payload);
        }
    }

    // --- fault-injection engine ------------------------------------------
    //
    // Data messages get a per-link sequence number and a copy in the
    // sender's retransmission buffer, then run the injection gauntlet:
    // reorder (hold back behind a successor), jitter (sleep), drop (never
    // enqueue), duplicate (enqueue twice). The receiver delivers strictly
    // in sequence order through a per-source reorder buffer, suppresses
    // duplicate sequence numbers, acks each first delivery, and nacks the
    // sender — with capped exponential backoff — when an expected message
    // goes missing. Every injection decision is a pure function of
    // `(seed, src, dst, class, seq)` (see `crate::fault::fault_draw`), so
    // equal seeds inject equal faults regardless of thread scheduling;
    // retransmissions reuse the original `seq` and bypass injection, so
    // recovery cannot re-lose a message forever.

    /// Put an envelope on the wire, bypassing fault injection. Used for
    /// control payloads, retransmissions, and the entire fault-free path.
    fn raw_send(&self, dst: usize, seq: u64, payload: Payload<K>) {
        self.senders[dst]
            .send(Envelope {
                src: self.rank,
                seq,
                payload,
            })
            .expect("peer rank hung up mid-exchange");
    }

    /// Sequence a data payload, buffer it for retransmission, and run it
    /// through the injection gauntlet.
    fn send_faulty(&mut self, dst: usize, payload: Payload<K>) {
        debug_assert!(!payload.is_control(), "control payloads use raw_send");
        let cfg = self.fault.as_ref().expect("fault session present").cfg;
        let seq = {
            let s = self.fault.as_mut().expect("fault session present");
            let seq = s.next_seq[dst];
            s.next_seq[dst] += 1;
            s.unacked[dst].insert(seq, payload.clone());
            seq
        };
        // Bounded reorder: hold this message back so its successor on the
        // same link overtakes it. At most one message per link is in
        // flight backwards; the stash is flushed when the next message to
        // that destination goes out, or at the end of the send phase.
        if fault_hit(
            cfg.seed,
            self.rank,
            dst,
            FaultClass::Reorder,
            seq,
            cfg.reorder_rate,
        ) {
            let s = self.fault.as_mut().expect("fault session present");
            if s.stash[dst].is_none() {
                s.stash[dst] = Some((seq, payload));
                self.stats.faults.reorders_injected += 1;
                return;
            }
        }
        self.emit(dst, seq, payload, &cfg);
        let stashed = self.fault.as_mut().expect("fault session present").stash[dst].take();
        if let Some((held_seq, held)) = stashed {
            self.emit(dst, held_seq, held, &cfg);
        }
    }

    /// The injection gauntlet for one sequenced message: jitter, drop,
    /// duplicate. A dropped message simply never reaches the channel —
    /// recovery happens when the receiver nacks and `handle_envelope`
    /// replays it from the retransmission buffer.
    fn emit(&mut self, dst: usize, seq: u64, payload: Payload<K>, cfg: &FaultConfig) {
        if cfg.jitter_us > 0 {
            let delay = crate::fault::fault_draw(cfg.seed, self.rank, dst, FaultClass::Jitter, seq)
                % (cfg.jitter_us + 1);
            if delay > 0 {
                self.stats.faults.jitter_events += 1;
                std::thread::sleep(Duration::from_micros(delay));
            }
        }
        if fault_hit(
            cfg.seed,
            self.rank,
            dst,
            FaultClass::Drop,
            seq,
            cfg.drop_rate,
        ) {
            self.stats.faults.drops_injected += 1;
            return;
        }
        if fault_hit(
            cfg.seed,
            self.rank,
            dst,
            FaultClass::Duplicate,
            seq,
            cfg.dup_rate,
        ) {
            self.stats.faults.dups_injected += 1;
            self.raw_send(dst, seq, payload.clone());
        }
        self.raw_send(dst, seq, payload);
    }

    /// Process one arrived envelope: acks clear the retransmission
    /// buffer, nacks replay it, and data payloads land in the reorder
    /// buffer (first delivery acked, duplicates suppressed).
    fn handle_envelope(&mut self, env: Envelope<K>) {
        match env.payload {
            Payload::Ack(seq) => {
                self.fault.as_mut().expect("fault session present").unacked[env.src].remove(&seq);
            }
            Payload::Nack(want) => {
                let resend: Vec<(u64, Payload<K>)> =
                    self.fault.as_ref().expect("fault session present").unacked[env.src]
                        .range(want..)
                        .map(|(&seq, payload)| (seq, payload.clone()))
                        .collect();
                if resend.is_empty() {
                    return; // stale nack: everything it asked for was acked
                }
                let t0 = Instant::now();
                for (seq, payload) in resend {
                    self.stats.faults.retries += 1;
                    self.raw_send(env.src, seq, payload);
                }
                let t1 = Instant::now();
                self.stats.faults.retry_time += t1.duration_since(t0);
                self.trace.span(TracePhase::Retry, t0, t1);
            }
            payload => {
                let (src, seq) = (env.src, env.seq);
                let fresh = {
                    let s = self.fault.as_mut().expect("fault session present");
                    if seq < s.next_deliver[src] || s.inbox[src].contains_key(&seq) {
                        false
                    } else {
                        s.inbox[src].insert(seq, payload);
                        true
                    }
                };
                if fresh {
                    // Ack exactly once, on first delivery. Acks ride the
                    // reliable control plane, so one is always enough.
                    self.stats.faults.acks_sent += 1;
                    self.raw_send(src, 0, Payload::Ack(seq));
                } else {
                    self.stats.faults.dups_suppressed += 1;
                }
            }
        }
    }

    /// Receive the next in-sequence payload from `src`, pumping the
    /// shared channel (and thereby servicing peers' acks and nacks) while
    /// waiting. When the expected message stays missing past the current
    /// backoff tick, nack the source; when cumulative blocked time passes
    /// the watchdog, fail the rank.
    fn recv_faulty(&mut self, src: usize) -> Payload<K> {
        let cfg = self.fault.as_ref().expect("fault session present").cfg;
        let mut backoff = cfg.retry_tick;
        let mut waited = Duration::ZERO;
        loop {
            {
                let s = self.fault.as_mut().expect("fault session present");
                let next = s.next_deliver[src];
                if let Some(payload) = s.inbox[src].remove(&next) {
                    s.next_deliver[src] = next + 1;
                    return payload;
                }
            }
            match self.receiver.recv_timeout(backoff) {
                Ok(env) => self.handle_envelope(env),
                Err(RecvTimeoutError::Timeout) => {
                    waited += backoff;
                    if let Some(limit) = cfg.watchdog {
                        if waited >= limit {
                            self.fail(FailurePhase::Receive, Some(src), waited);
                        }
                    }
                    let want = self
                        .fault
                        .as_ref()
                        .expect("fault session present")
                        .next_deliver[src];
                    self.stats.faults.nacks_sent += 1;
                    self.raw_send(src, 0, Payload::Nack(want));
                    backoff = (backoff * 2).min(cfg.backoff_cap);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("all peers hung up while receiving")
                }
            }
        }
    }

    /// Start-of-collective hook: injects the whole-rank stall ("slow
    /// rank" skew) before any timing window opens, so the stall shows up
    /// as peer-side Transfer/Barrier wait plus a `Stall` span here —
    /// exactly how a genuinely slow node reads in a trace.
    fn fault_collective_begin(&mut self) {
        let Some(s) = self.fault.as_ref() else { return };
        let cfg = s.cfg;
        if cfg.stall_rank == Some(self.rank) && cfg.stall_us > 0 {
            let t0 = Instant::now();
            std::thread::sleep(Duration::from_micros(cfg.stall_us));
            let t1 = Instant::now();
            self.stats.faults.stalls_injected += 1;
            self.stats.faults.stall_time += t1.duration_since(t0);
            self.trace.span(TracePhase::Stall, t0, t1);
        }
    }

    /// End-of-send-phase hook: release every held-back (reordered)
    /// message. Displacement is thereby bounded by one collective's send
    /// phase — a message can arrive late, never in a later collective.
    fn fault_sends_done(&mut self) {
        if self.fault.is_none() {
            return;
        }
        let cfg = self.fault.as_ref().expect("fault session present").cfg;
        for dst in 0..self.procs {
            let stashed = self.fault.as_mut().expect("fault session present").stash[dst].take();
            if let Some((seq, payload)) = stashed {
                self.emit(dst, seq, payload, &cfg);
            }
        }
    }

    /// End-of-collective hook: block until every payload this rank sent
    /// has been acknowledged, servicing nacks (retransmitting) and
    /// foreign data while waiting. This is what guarantees a rank reaches
    /// the next barrier owing nothing: a dropped message to a peer keeps
    /// the *sender* here — inside the collective, still pumping the
    /// channel — until the peer's nack/retransmit round-trip lands.
    fn fault_flush(&mut self) {
        if self.fault.is_none() {
            return;
        }
        self.fault_sends_done();
        let cfg = self.fault.as_ref().expect("fault session present").cfg;
        let mut backoff = cfg.retry_tick;
        let mut waited = Duration::ZERO;
        loop {
            while let Ok(env) = self.receiver.try_recv() {
                self.handle_envelope(env);
            }
            let outstanding = self
                .fault
                .as_ref()
                .expect("fault session present")
                .unacked
                .iter()
                .position(|m| !m.is_empty());
            let Some(dst) = outstanding else { return };
            match self.receiver.recv_timeout(backoff) {
                Ok(env) => self.handle_envelope(env),
                Err(RecvTimeoutError::Timeout) => {
                    waited += backoff;
                    if let Some(limit) = cfg.watchdog {
                        if waited >= limit {
                            self.fail(FailurePhase::Drain, Some(dst), waited);
                        }
                    }
                    backoff = (backoff * 2).min(cfg.backoff_cap);
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("all peers hung up while draining acks")
                }
            }
        }
    }

    /// Record the terminal stall and abort this rank with a structured
    /// [`RankFailure`] (caught and returned as an error by
    /// [`crate::runtime::run_spmd_chaos`]).
    fn fail(&mut self, during: FailurePhase, waiting_on: Option<usize>, waited: Duration) -> ! {
        let now = Instant::now();
        let start = now.checked_sub(waited).unwrap_or(now);
        self.trace.span(TracePhase::Stall, start, now);
        std::panic::panic_any(RankFailure {
            rank: self.rank,
            during,
            waiting_on,
            waited,
        });
    }
}

/// Per-rank sender fan-out plus each rank's receiver endpoint.
pub(crate) type Mesh<K> = (Vec<Vec<Sender<Envelope<K>>>>, Vec<Receiver<Envelope<K>>>);

pub(crate) fn make_mesh<K>(procs: usize) -> Mesh<K> {
    let mut txs = Vec::with_capacity(procs);
    let mut rxs = Vec::with_capacity(procs);
    for _ in 0..procs {
        let (tx, rx) = crossbeam::channel::unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let per_rank_senders: Vec<Vec<Sender<Envelope<K>>>> = (0..procs).map(|_| txs.clone()).collect();
    (per_rank_senders, rxs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_spmd;

    #[test]
    fn exchange_counts_volume_and_messages_long() {
        let results = run_spmd::<u32, _, _>(4, MessageMode::Long, |comm| {
            let me = comm.rank() as u32;
            // Send 2 elements to each other rank, keep 2.
            let outgoing: Vec<Vec<u32>> = (0..4).map(|_| vec![me, me]).collect();
            let _ = comm.exchange(outgoing);
        });
        for r in &results {
            assert_eq!(r.stats.remap_count(), 1);
            assert_eq!(r.stats.elements_sent, 6);
            assert_eq!(
                r.stats.messages_sent, 3,
                "long mode: one message per partner"
            );
            assert_eq!(r.stats.remaps[0].elements_kept, 2);
            assert_eq!(r.stats.remaps[0].group_size, 4);
        }
    }

    #[test]
    fn exchange_counts_messages_short() {
        let results = run_spmd::<u32, _, _>(4, MessageMode::Short, |comm| {
            let me = comm.rank() as u32;
            let outgoing: Vec<Vec<u32>> = (0..4).map(|_| vec![me, me]).collect();

            comm.exchange(outgoing)
        });
        for (rank, r) in results.iter().enumerate() {
            assert_eq!(
                r.stats.messages_sent, 6,
                "short mode: one message per element"
            );
            for (src, v) in r.output.iter().enumerate() {
                assert_eq!(v, &vec![src as u32, src as u32], "rank {rank} from {src}");
            }
        }
    }

    #[test]
    fn empty_destinations_send_no_messages() {
        let results = run_spmd::<u32, _, _>(3, MessageMode::Long, |comm| {
            let outgoing: Vec<Vec<u32>> = vec![Vec::new(); 3];
            let incoming = comm.exchange(outgoing);
            incoming.iter().map(Vec::len).sum::<usize>()
        });
        for r in &results {
            assert_eq!(r.output, 0);
            assert_eq!(r.stats.messages_sent, 0);
            assert_eq!(r.stats.elements_sent, 0);
            assert_eq!(r.stats.remaps[0].group_size, 1);
        }
    }

    #[test]
    fn sendrecv_swaps_buffers() {
        for mode in [MessageMode::Long, MessageMode::Short] {
            let results = run_spmd::<u64, _, _>(4, mode, |comm| {
                let partner = comm.rank() ^ 1;
                let mine: Vec<u64> = vec![comm.rank() as u64; 3];
                comm.sendrecv(partner, mine)
            });
            for (rank, r) in results.iter().enumerate() {
                assert_eq!(r.output, vec![(rank ^ 1) as u64; 3]);
                assert_eq!(r.stats.elements_sent, 3);
            }
        }
    }

    #[test]
    fn repeated_exchanges_stay_ordered() {
        // Two back-to-back exchanges: buffered early arrivals must not leak
        // between rounds.
        let results = run_spmd::<u32, _, _>(4, MessageMode::Long, |comm| {
            let me = comm.rank() as u32;
            let first = comm.exchange((0..4).map(|_| vec![me]).collect());
            let second = comm.exchange((0..4).map(|_| vec![me + 100]).collect());
            (first, second)
        });
        for r in &results {
            let (first, second) = &r.output;
            for src in 0..4 {
                assert_eq!(first[src], vec![src as u32]);
                assert_eq!(second[src], vec![src as u32 + 100]);
            }
            assert_eq!(r.stats.remap_count(), 2);
        }
    }

    #[test]
    fn alltoallv_matches_exchange_counters_and_data() {
        for mode in [MessageMode::Long, MessageMode::Short] {
            let results = run_spmd::<u32, _, _>(4, mode, |comm| {
                let me = comm.rank() as u32;
                // Rank r sends r+1 copies of its id to every rank (itself
                // included), so recv counts are knowable: src s sends s+1.
                let counts: Vec<usize> = vec![comm.rank() + 1; 4];
                let sendbuf: Vec<u32> = vec![me; 4 * (comm.rank() + 1)];
                let recv_counts: Vec<usize> = (0..4).map(|s| s + 1).collect();
                let mut recvbuf = Vec::new();
                comm.alltoallv(&sendbuf, &counts, &mut recvbuf, &recv_counts);

                // Oracle: the legacy nested-Vec exchange with equal traffic.
                let outgoing: Vec<Vec<u32>> = (0..4).map(|_| vec![me; comm.rank() + 1]).collect();
                let oracle = comm.exchange(outgoing);
                (recvbuf, oracle)
            });
            for r in &results {
                let (flat, oracle) = &r.output;
                let oracle_flat: Vec<u32> = oracle.iter().flatten().copied().collect();
                assert_eq!(flat, &oracle_flat, "flat ≡ oracle concatenation");
                let [a, b] = &r.stats.remaps[..] else {
                    panic!("expected two remap records");
                };
                assert_eq!(a.elements_sent, b.elements_sent);
                assert_eq!(a.elements_kept, b.elements_kept);
                assert_eq!(a.messages_sent, b.messages_sent);
                assert_eq!(a.elements_received, b.elements_received);
                assert_eq!(a.group_size, b.group_size);
            }
        }
    }

    #[test]
    fn alltoallv_skips_empty_destinations() {
        let results = run_spmd::<u32, _, _>(4, MessageMode::Long, |comm| {
            // Only even ranks send, and only to odd ranks: 2 keys each.
            let me = comm.rank();
            let sending = me % 2 == 0;
            let counts: Vec<usize> = (0..4)
                .map(|d| if sending && d % 2 == 1 { 2 } else { 0 })
                .collect();
            let sendbuf = vec![me as u32; counts.iter().sum()];
            let recv_counts: Vec<usize> = (0..4)
                .map(|s| if me % 2 == 1 && s % 2 == 0 { 2 } else { 0 })
                .collect();
            let mut recvbuf = Vec::new();
            comm.alltoallv(&sendbuf, &counts, &mut recvbuf, &recv_counts);
            recvbuf
        });
        assert_eq!(results[1].output, vec![0, 0, 2, 2]);
        assert_eq!(results[3].output, vec![0, 0, 2, 2]);
        assert_eq!(results[0].stats.remaps[0].messages_sent, 2);
        assert_eq!(results[0].stats.remaps[0].group_size, 3);
        assert_eq!(results[1].stats.remaps[0].messages_sent, 0);
        assert_eq!(results[1].stats.remaps[0].group_size, 1);
    }

    #[test]
    fn alltoallv_pool_reaches_steady_state() {
        let results = run_spmd::<u64, _, _>(4, MessageMode::Long, |comm| {
            let counts = vec![8usize; 4];
            let sendbuf = vec![comm.rank() as u64; 32];
            let mut recvbuf = Vec::new();
            for _ in 0..2 {
                comm.alltoallv(&sendbuf, &counts, &mut recvbuf, &counts);
            }
            let after_warmup = comm.pool_misses();
            for _ in 0..20 {
                comm.alltoallv(&sendbuf, &counts, &mut recvbuf, &counts);
            }
            (after_warmup, comm.pool_misses())
        });
        for r in &results {
            let (warm, done) = r.output;
            assert_eq!(warm, done, "steady state must not allocate send buffers");
        }
    }

    #[test]
    fn alltoallv_uncounted_discovers_counts() {
        for mode in [MessageMode::Long, MessageMode::Short] {
            let results = run_spmd::<u32, _, _>(4, mode, |comm| {
                let me = comm.rank() as u32;
                let counts: Vec<usize> = vec![comm.rank() + 1; 4];
                let sendbuf: Vec<u32> = vec![me; 4 * (comm.rank() + 1)];
                let mut recvbuf = Vec::new();
                let mut recv_counts = Vec::new();
                comm.alltoallv_uncounted(&sendbuf, &counts, &mut recvbuf, &mut recv_counts);
                (recvbuf, recv_counts)
            });
            for r in &results {
                let (data, counts) = &r.output;
                assert_eq!(counts, &vec![1, 2, 3, 4]);
                let expect: Vec<u32> = (0..4u32).flat_map(|s| vec![s; s as usize + 1]).collect();
                assert_eq!(data, &expect);
            }
        }
    }

    #[test]
    fn sendrecv_into_matches_sendrecv() {
        for mode in [MessageMode::Long, MessageMode::Short] {
            let results = run_spmd::<u64, _, _>(4, mode, |comm| {
                let partner = comm.rank() ^ 1;
                let mine: Vec<u64> = vec![comm.rank() as u64; 3];
                let mut got = Vec::new();
                comm.sendrecv_into(partner, &mine, &mut got);
                let oracle = comm.sendrecv(partner, mine);
                (got, oracle)
            });
            for r in &results {
                let (flat, oracle) = &r.output;
                assert_eq!(flat, oracle);
                let [a, b] = &r.stats.remaps[..] else {
                    panic!("expected two remap records");
                };
                assert_eq!(a.messages_sent, b.messages_sent);
                assert_eq!(a.elements_sent, b.elements_sent);
                assert_eq!(a.elements_received, b.elements_received);
                assert_eq!(a.group_size, b.group_size);
            }
        }
    }

    #[test]
    fn timed_charges_phase() {
        let results = run_spmd::<u32, _, _>(1, MessageMode::Long, |comm| {
            comm.timed(Phase::Compute, |_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        });
        assert!(results[0].stats.time(Phase::Compute) >= std::time::Duration::from_millis(4));
    }

    #[test]
    fn drain_kernel_tally_attributes_to_the_rank() {
        let results = run_spmd::<u64, _, _>(2, MessageMode::Long, |comm| {
            local_sorts::dispatch::clear_tally();
            // One sort per rank above the bitonic crossover (radix) and
            // `rank + 1` below it (bitonic network), so the two ranks
            // record different counts.
            use local_sorts::Direction;
            let mut big: Vec<u64> = (0..20_000).rev().collect();
            let mut scratch = Vec::new();
            local_sorts::local_sort_with_scratch(&mut big, &mut scratch, Direction::Ascending);
            for _ in 0..=comm.rank() {
                let mut small = [5u64, 1, 4, 1, 3, 9, 2, 6];
                local_sorts::local_sort_with_scratch(
                    &mut small[..],
                    &mut scratch,
                    Direction::Ascending,
                );
            }
            comm.drain_kernel_tally();
        });
        for (rank, r) in results.iter().enumerate() {
            assert_eq!(r.stats.kernel_count("radix"), 1, "rank {rank}");
            assert_eq!(
                r.stats.kernel_count("bitonic_net"),
                rank as u64 + 1,
                "rank {rank}"
            );
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The flat planned all-to-all is byte-identical to the legacy
        /// nested-Vec `exchange` — data *and* the R/V/M counter record —
        /// over random machine sizes, random (possibly empty, possibly
        /// uneven) count matrices, and both message modes.
        #[test]
        fn alltoallv_equals_exchange_on_random_traffic(
            lg_p in 0u32..4,
            seed in any::<u64>(),
            long in any::<bool>(),
        ) {
            let p = 1usize << lg_p;
            let mode = if long { MessageMode::Long } else { MessageMode::Short };
            // Shared pseudorandom count matrix: counts[src][dst] in 0..6.
            let counts: Vec<Vec<usize>> = {
                let mut x = seed | 1;
                (0..p).map(|_| (0..p).map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((x >> 33) % 6) as usize
                }).collect()).collect()
            };
            let counts2 = counts.clone();
            let results = run_spmd::<u32, _, _>(p, mode, move |comm| {
                let me = comm.rank();
                // Deterministic payload: src, dst and position are recoverable.
                let outgoing: Vec<Vec<u32>> = (0..p)
                    .map(|dst| {
                        (0..counts2[me][dst])
                            .map(|i| (me * 10_000 + dst * 100 + i) as u32)
                            .collect()
                    })
                    .collect();
                let sendbuf: Vec<u32> = outgoing.iter().flatten().copied().collect();
                let send_counts = counts2[me].clone();
                let recv_counts: Vec<usize> = (0..p).map(|src| counts2[src][me]).collect();
                let mut recvbuf = Vec::new();
                comm.alltoallv(&sendbuf, &send_counts, &mut recvbuf, &recv_counts);
                let oracle = comm.exchange(outgoing);
                (recvbuf, oracle)
            });
            for r in &results {
                let (flat, oracle) = &r.output;
                let oracle_flat: Vec<u32> = oracle.iter().flatten().copied().collect();
                prop_assert_eq!(flat, &oracle_flat, "rank {}: flat ≡ oracle", r.rank);
                let [a, b] = &r.stats.remaps[..] else {
                    panic!("expected exactly two remap records");
                };
                prop_assert_eq!(a, b, "rank {}: R/V/M records must match", r.rank);
            }
        }
    }
}
