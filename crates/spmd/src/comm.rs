//! The per-rank communicator: point-to-point mesh, all-to-all exchange,
//! pairwise bulk exchange, and barriers — with Section 3.4's metrics
//! recorded on every operation.

use crate::barrier::SenseBarrier;
use crate::counters::{CommStats, Phase, RemapRecord};
use crossbeam::channel::{Receiver, Sender};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Transfer regime for remaps (Section 5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageMode {
    /// One key per message — the LogP regime. Every element costs a message
    /// (`M = V`), which is why Table 5.3 shows ≈13 µs/key of communication.
    Short,
    /// One packed message per destination — the LogGP regime enabled by the
    /// pack/unpack machinery of Section 3.3.
    Long,
}

pub(crate) enum Payload<K> {
    /// Announces how many single-element messages follow (short mode).
    Header(usize),
    /// A packed long message, or one element in short mode.
    Data(Vec<K>),
    /// Control metadata (histograms, counts) — always one message
    /// regardless of mode, like the small bookkeeping messages real
    /// implementations piggyback on the network.
    Meta(Vec<u64>),
}

pub(crate) struct Envelope<K> {
    src: usize,
    payload: Payload<K>,
}

/// A rank's endpoint into the SPMD machine.
///
/// Created by [`crate::run_spmd`]; one per thread. All operations are
/// *collective over the set of ranks that call them* — `exchange` and
/// `barrier` must be called by every rank, `sendrecv` by both partners —
/// mirroring Split-C's bulk operations.
pub struct Comm<K> {
    rank: usize,
    procs: usize,
    mode: MessageMode,
    senders: Vec<Sender<Envelope<K>>>,
    receiver: Receiver<Envelope<K>>,
    barrier: Arc<SenseBarrier>,
    /// Early arrivals buffered per source rank (channels are shared FIFOs;
    /// a fast sender's messages may land before we ask for them).
    pending: Vec<VecDeque<Payload<K>>>,
    /// Metrics for this rank; harvested by the runtime when the program
    /// returns.
    pub stats: CommStats,
}

impl<K: Send + 'static> Comm<K> {
    pub(crate) fn new(
        rank: usize,
        mode: MessageMode,
        senders: Vec<Sender<Envelope<K>>>,
        receiver: Receiver<Envelope<K>>,
        barrier: Arc<SenseBarrier>,
    ) -> Self {
        let procs = senders.len();
        Comm {
            rank,
            procs,
            mode,
            senders,
            receiver,
            barrier,
            pending: (0..procs).map(|_| VecDeque::new()).collect(),
            stats: CommStats::new(),
        }
    }

    /// This rank's id, `0 .. procs`.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the machine (`P`).
    #[must_use]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The transfer regime this machine was started with.
    #[must_use]
    pub fn mode(&self) -> MessageMode {
        self.mode
    }

    /// Run `f` and charge its wall-clock to `phase`.
    pub fn timed<T>(&mut self, phase: Phase, f: impl FnOnce(&mut Self) -> T) -> T {
        let t0 = Instant::now();
        let out = f(self);
        self.stats.add_time(phase, t0.elapsed());
        out
    }

    /// Wait for all ranks; time spent is charged to [`Phase::Barrier`].
    pub fn barrier(&mut self) {
        let t0 = Instant::now();
        self.barrier.wait();
        self.stats.add_time(Phase::Barrier, t0.elapsed());
    }

    /// All-to-all personalized exchange: `outgoing[dst]` is delivered to
    /// rank `dst`; the returned vector holds `incoming[src]` from each rank
    /// (`incoming[self.rank()]` is `outgoing[self.rank()]`, untouched).
    ///
    /// One call is one *communication step* — a [`RemapRecord`] is pushed,
    /// and transfer wall-clock is charged to [`Phase::Transfer`]. In
    /// [`MessageMode::Short`] every element travels as its own message; in
    /// [`MessageMode::Long`] each non-empty destination gets one message.
    ///
    /// # Panics
    /// Panics if `outgoing.len() != self.procs()` or a peer disappeared.
    pub fn exchange(&mut self, mut outgoing: Vec<Vec<K>>) -> Vec<Vec<K>> {
        assert_eq!(
            outgoing.len(),
            self.procs,
            "one outgoing buffer per rank required"
        );
        let t0 = Instant::now();
        let mut record = RemapRecord::default();
        let mut partners = 0u64;

        // Keep own slice aside; send everything else before receiving so
        // the exchange cannot deadlock (channels are unbounded).
        let own = std::mem::take(&mut outgoing[self.rank]);
        record.elements_kept = own.len() as u64;

        for (dst, data) in outgoing.into_iter().enumerate() {
            if dst == self.rank {
                continue;
            }
            let len = data.len();
            if len > 0 {
                partners += 1;
                record.elements_sent += len as u64;
            }
            match self.mode {
                MessageMode::Long => {
                    if len > 0 {
                        record.messages_sent += 1;
                    }
                    self.send_to(dst, Payload::Data(data));
                }
                MessageMode::Short => {
                    record.messages_sent += len as u64;
                    self.send_to(dst, Payload::Header(len));
                    for k in data {
                        self.send_to(dst, Payload::Data(vec![k]));
                    }
                }
            }
        }

        let mut incoming: Vec<Vec<K>> = (0..self.procs).map(|_| Vec::new()).collect();
        incoming[self.rank] = own;
        let me = self.rank;
        for src in (0..self.procs).filter(|&s| s != me) {
            let received = match self.mode {
                MessageMode::Long => match self.recv_payload(src) {
                    Payload::Data(v) => v,
                    _ => panic!("unexpected payload in long-message mode"),
                },
                MessageMode::Short => {
                    let count = match self.recv_payload(src) {
                        Payload::Header(c) => c,
                        _ => panic!("missing header in short-message mode"),
                    };
                    let mut buf = Vec::with_capacity(count);
                    for _ in 0..count {
                        match self.recv_payload(src) {
                            Payload::Data(mut v) => buf.append(&mut v),
                            _ => panic!("unexpected payload after header"),
                        }
                    }
                    buf
                }
            };
            record.elements_received += received.len() as u64;
            incoming[src] = received;
        }

        record.group_size = partners + 1;
        self.stats.add_time(Phase::Transfer, t0.elapsed());
        self.stats.push_remap(record);
        incoming
    }

    /// Pairwise bulk exchange with `partner`: send `data`, receive the
    /// partner's buffer. This is the hypercube-step primitive of the
    /// blocked-merge baseline (Section 5.3), where at each remote step
    /// "processors communicate in pairs … each processor sends one big
    /// message of size n".
    pub fn sendrecv(&mut self, partner: usize, data: Vec<K>) -> Vec<K> {
        assert_ne!(partner, self.rank, "cannot sendrecv with self");
        let t0 = Instant::now();
        let mut record = RemapRecord {
            elements_sent: data.len() as u64,
            group_size: 2,
            ..Default::default()
        };
        match self.mode {
            MessageMode::Long => {
                record.messages_sent = u64::from(!data.is_empty());
                self.send_to(partner, Payload::Data(data));
            }
            MessageMode::Short => {
                record.messages_sent = data.len() as u64;
                self.send_to(partner, Payload::Header(data.len()));
                for k in data {
                    self.send_to(partner, Payload::Data(vec![k]));
                }
            }
        }
        let received = match self.mode {
            MessageMode::Long => match self.recv_payload(partner) {
                Payload::Data(v) => v,
                _ => panic!("unexpected payload in long-message mode"),
            },
            MessageMode::Short => {
                let count = match self.recv_payload(partner) {
                    Payload::Header(c) => c,
                    _ => panic!("missing header in short-message mode"),
                };
                let mut buf = Vec::with_capacity(count);
                for _ in 0..count {
                    match self.recv_payload(partner) {
                        Payload::Data(mut v) => buf.append(&mut v),
                        _ => panic!("unexpected payload after header"),
                    }
                }
                buf
            }
        };
        record.elements_received = received.len() as u64;
        self.stats.add_time(Phase::Transfer, t0.elapsed());
        self.stats.push_remap(record);
        received
    }

    /// All-to-all exchange of control metadata (e.g. the per-digit
    /// histograms of parallel radix sort). Metadata always travels as one
    /// message per destination, independent of [`MessageMode`]; the
    /// exchange is recorded as a communication step whose volume counts
    /// the `u64` words sent.
    pub fn exchange_meta(&mut self, mut outgoing: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        assert_eq!(
            outgoing.len(),
            self.procs,
            "one outgoing buffer per rank required"
        );
        let t0 = Instant::now();
        let mut record = RemapRecord::default();
        let own = std::mem::take(&mut outgoing[self.rank]);
        record.elements_kept = own.len() as u64;
        for (dst, data) in outgoing.into_iter().enumerate() {
            if dst == self.rank {
                continue;
            }
            if !data.is_empty() {
                record.elements_sent += data.len() as u64;
                record.messages_sent += 1;
            }
            self.send_to(dst, Payload::Meta(data));
        }
        let mut incoming: Vec<Vec<u64>> = (0..self.procs).map(|_| Vec::new()).collect();
        incoming[self.rank] = own;
        let me = self.rank;
        for src in (0..self.procs).filter(|&s| s != me) {
            incoming[src] = match self.recv_payload(src) {
                Payload::Meta(v) => v,
                _ => panic!("expected metadata payload"),
            };
            record.elements_received += incoming[src].len() as u64;
        }
        record.group_size = self.procs as u64;
        self.stats.add_time(Phase::Transfer, t0.elapsed());
        self.stats.push_remap(record);
        incoming
    }

    fn send_to(&self, dst: usize, payload: Payload<K>) {
        self.senders[dst]
            .send(Envelope {
                src: self.rank,
                payload,
            })
            .expect("peer rank hung up mid-exchange");
    }

    fn recv_payload(&mut self, src: usize) -> Payload<K> {
        loop {
            if let Some(p) = self.pending[src].pop_front() {
                return p;
            }
            let env = self
                .receiver
                .recv()
                .expect("all peers hung up while receiving");
            if env.src == src {
                return env.payload;
            }
            self.pending[env.src].push_back(env.payload);
        }
    }
}

/// Per-rank sender fan-out plus each rank's receiver endpoint.
pub(crate) type Mesh<K> = (Vec<Vec<Sender<Envelope<K>>>>, Vec<Receiver<Envelope<K>>>);

pub(crate) fn make_mesh<K>(procs: usize) -> Mesh<K> {
    let mut txs = Vec::with_capacity(procs);
    let mut rxs = Vec::with_capacity(procs);
    for _ in 0..procs {
        let (tx, rx) = crossbeam::channel::unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let per_rank_senders: Vec<Vec<Sender<Envelope<K>>>> = (0..procs).map(|_| txs.clone()).collect();
    (per_rank_senders, rxs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_spmd;

    #[test]
    fn exchange_counts_volume_and_messages_long() {
        let results = run_spmd::<u32, _, _>(4, MessageMode::Long, |comm| {
            let me = comm.rank() as u32;
            // Send 2 elements to each other rank, keep 2.
            let outgoing: Vec<Vec<u32>> = (0..4).map(|_| vec![me, me]).collect();
            let _ = comm.exchange(outgoing);
        });
        for r in &results {
            assert_eq!(r.stats.remap_count(), 1);
            assert_eq!(r.stats.elements_sent, 6);
            assert_eq!(
                r.stats.messages_sent, 3,
                "long mode: one message per partner"
            );
            assert_eq!(r.stats.remaps[0].elements_kept, 2);
            assert_eq!(r.stats.remaps[0].group_size, 4);
        }
    }

    #[test]
    fn exchange_counts_messages_short() {
        let results = run_spmd::<u32, _, _>(4, MessageMode::Short, |comm| {
            let me = comm.rank() as u32;
            let outgoing: Vec<Vec<u32>> = (0..4).map(|_| vec![me, me]).collect();

            comm.exchange(outgoing)
        });
        for (rank, r) in results.iter().enumerate() {
            assert_eq!(
                r.stats.messages_sent, 6,
                "short mode: one message per element"
            );
            for (src, v) in r.output.iter().enumerate() {
                assert_eq!(v, &vec![src as u32, src as u32], "rank {rank} from {src}");
            }
        }
    }

    #[test]
    fn empty_destinations_send_no_messages() {
        let results = run_spmd::<u32, _, _>(3, MessageMode::Long, |comm| {
            let outgoing: Vec<Vec<u32>> = vec![Vec::new(); 3];
            let incoming = comm.exchange(outgoing);
            incoming.iter().map(Vec::len).sum::<usize>()
        });
        for r in &results {
            assert_eq!(r.output, 0);
            assert_eq!(r.stats.messages_sent, 0);
            assert_eq!(r.stats.elements_sent, 0);
            assert_eq!(r.stats.remaps[0].group_size, 1);
        }
    }

    #[test]
    fn sendrecv_swaps_buffers() {
        for mode in [MessageMode::Long, MessageMode::Short] {
            let results = run_spmd::<u64, _, _>(4, mode, |comm| {
                let partner = comm.rank() ^ 1;
                let mine: Vec<u64> = vec![comm.rank() as u64; 3];
                comm.sendrecv(partner, mine)
            });
            for (rank, r) in results.iter().enumerate() {
                assert_eq!(r.output, vec![(rank ^ 1) as u64; 3]);
                assert_eq!(r.stats.elements_sent, 3);
            }
        }
    }

    #[test]
    fn repeated_exchanges_stay_ordered() {
        // Two back-to-back exchanges: buffered early arrivals must not leak
        // between rounds.
        let results = run_spmd::<u32, _, _>(4, MessageMode::Long, |comm| {
            let me = comm.rank() as u32;
            let first = comm.exchange((0..4).map(|_| vec![me]).collect());
            let second = comm.exchange((0..4).map(|_| vec![me + 100]).collect());
            (first, second)
        });
        for r in &results {
            let (first, second) = &r.output;
            for src in 0..4 {
                assert_eq!(first[src], vec![src as u32]);
                assert_eq!(second[src], vec![src as u32 + 100]);
            }
            assert_eq!(r.stats.remap_count(), 2);
        }
    }

    #[test]
    fn timed_charges_phase() {
        let results = run_spmd::<u32, _, _>(1, MessageMode::Long, |comm| {
            comm.timed(Phase::Compute, |_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
            });
        });
        assert!(results[0].stats.time(Phase::Compute) >= std::time::Duration::from_millis(4));
    }
}
