//! Sequential number-theoretic transform — the reference the distributed
//! version is verified against.
//!
//! The forward transform is decimation-in-frequency (Gentleman–Sande):
//! levels walk the address bits from most to least significant, so the
//! natural-order input produces bit-reversed output, which a final
//! permutation restores. This is exactly one stage of the bitonic network's
//! butterfly shape (Figure 2.2) with MIN/MAX replaced by an
//! add/subtract-twiddle pair — the structural kinship the thesis's future
//! work section points at.

use crate::field::{add, inv, mul, pow, root_of_unity, sub};

/// Reverse the low `bits` bits of `i`.
#[must_use]
pub fn bit_reverse(i: usize, bits: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - bits)
}

/// Permute `data` into bit-reversed order.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    if n <= 2 {
        return;
    }
    let bits = n.trailing_zeros();
    assert!(n.is_power_of_two());
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// One DIF butterfly level over an arbitrary local window of the global
/// array.
///
/// Globally, level `level` pairs addresses differing in absolute bit
/// `level`, and the twiddle of the pair with lower address `i` is
/// `w_N^{(i mod 2^level) · 2^{lgN−1−level}}`. Under a data layout, that
/// absolute bit sits at some *local* bit `local_bit`, and `abs_of` maps
/// local indices back to absolute addresses for the twiddle computation —
/// the same local-window trick the bitonic phases use.
pub fn dif_level_mapped(
    data: &mut [u64],
    lg_n: u32,
    level: u32,
    local_bit: u32,
    w_n: u64,
    abs_of: impl Fn(usize) -> usize,
) {
    let dist = 1usize << local_bit;
    let half_abs = 1usize << level;
    let stride_exp = 1u64 << (lg_n - 1 - level);
    for x in (0..data.len()).filter(|x| x & dist == 0) {
        let abs = abs_of(x);
        debug_assert_eq!(
            abs & half_abs,
            0,
            "layout must keep pairs aligned on the level bit"
        );
        let tw_exp = ((abs & (half_abs - 1)) as u64) * stride_exp;
        let (a, b) = (data[x], data[x | dist]);
        data[x] = add(a, b);
        data[x | dist] = mul(sub(a, b), pow(w_n, tw_exp));
    }
}

/// One DIF butterfly level of the sequential transform (identity layout).
pub fn dif_level(
    data: &mut [u64],
    lg_n: u32,
    level: u32,
    w_n: u64,
    abs_of: impl Fn(usize) -> usize,
) {
    dif_level_mapped(data, lg_n, level, level, w_n, abs_of);
}

/// Forward NTT of a power-of-two-length array, in place, natural order in
/// and natural order out.
///
/// # Panics
/// Panics if the length is not a power of two or exceeds `2^32`.
pub fn ntt(data: &mut [u64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two(), "NTT length must be a power of two");
    let lg_n = n.trailing_zeros();
    let w_n = root_of_unity(lg_n);
    for level in (0..lg_n).rev() {
        dif_level(data, lg_n, level, w_n, |x| x);
    }
    bit_reverse_permute(data);
}

/// Inverse NTT, in place, natural order in and out.
pub fn intt(data: &mut [u64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    assert!(n.is_power_of_two());
    let lg_n = n.trailing_zeros();
    // Inverse transform = forward transform with w^{-1}, scaled by 1/n.
    let w_inv = inv(root_of_unity(lg_n));
    for level in (0..lg_n).rev() {
        dif_level(data, lg_n, level, w_inv, |x| x);
    }
    bit_reverse_permute(data);
    let n_inv = inv(n as u64);
    for v in data.iter_mut() {
        *v = mul(*v, n_inv);
    }
}

/// Naive `O(n^2)` DFT over the field — ground truth for small sizes.
#[must_use]
pub fn naive_dft(data: &[u64]) -> Vec<u64> {
    let n = data.len();
    assert!(n.is_power_of_two());
    let w = root_of_unity(n.trailing_zeros());
    (0..n)
        .map(|k| {
            let mut acc = 0u64;
            for (j, &x) in data.iter().enumerate() {
                acc = add(acc, mul(x, pow(w, (j as u64) * (k as u64))));
            }
            acc
        })
        .collect()
}

/// Multiply two polynomials (coefficient vectors) exactly, via the
/// convolution theorem. The result length is `a.len() + b.len() - 1`,
/// computed in the smallest sufficient power-of-two transform.
#[must_use]
pub fn polymul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    let n = out_len.next_power_of_two();
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    fa.resize(n, 0);
    fb.resize(n, 0);
    ntt(&mut fa);
    ntt(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = mul(*x, *y);
    }
    intt(&mut fa);
    fa.truncate(out_len);
    fa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::P;
    use proptest::prelude::*;

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let data: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9E37_79B9) % P)
                .collect();
            let mut fast = data.clone();
            ntt(&mut fast);
            assert_eq!(fast, naive_dft(&data), "n = {n}");
        }
    }

    #[test]
    fn inverse_round_trip() {
        let data: Vec<u64> = (0..256u64).map(|i| pow(i + 3, 5)).collect();
        let mut v = data.clone();
        ntt(&mut v);
        intt(&mut v);
        assert_eq!(v, data);
    }

    #[test]
    fn transform_of_delta_is_all_ones() {
        let mut v = vec![0u64; 32];
        v[0] = 1;
        ntt(&mut v);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn transform_of_constant_is_scaled_delta() {
        let mut v = vec![3u64; 16];
        ntt(&mut v);
        assert_eq!(v[0], 48);
        assert!(v[1..].iter().all(|&x| x == 0));
    }

    #[test]
    fn bit_reversal_is_involutive() {
        let mut v: Vec<u32> = (0..64).collect();
        let orig = v.clone();
        bit_reverse_permute(&mut v);
        assert_ne!(v, orig);
        bit_reverse_permute(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn polymul_small_example() {
        // (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2.
        assert_eq!(polymul(&[1, 2], &[3, 4]), vec![3, 10, 8]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn polymul_matches_schoolbook(
            a in proptest::collection::vec(0u64..1_000_000, 1..24),
            b in proptest::collection::vec(0u64..1_000_000, 1..24),
        ) {
            let fast = polymul(&a, &b);
            let mut slow = vec![0u64; a.len() + b.len() - 1];
            for (i, &x) in a.iter().enumerate() {
                for (j, &y) in b.iter().enumerate() {
                    slow[i + j] = add(slow[i + j], mul(x, y));
                }
            }
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn linearity(
            a in proptest::collection::vec(0..P, 16),
            b in proptest::collection::vec(0..P, 16),
        ) {
            let mut fa = a.clone();
            let mut fb = b.clone();
            ntt(&mut fa);
            ntt(&mut fb);
            let mut sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| add(x, y)).collect();
            ntt(&mut sum);
            let expect: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| add(x, y)).collect();
            prop_assert_eq!(sum, expect);
        }
    }
}
