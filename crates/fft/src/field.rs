//! Arithmetic in the Goldilocks prime field `F_p`, `p = 2^64 − 2^32 + 1`.
//!
//! `p − 1 = 2^32 · 3 · 5 · 17 · 257 · 65537`, so the field has `2^32`-th
//! roots of unity — enough for any transform size this crate will ever
//! see — and every operation is exact, which lets the parallel FFT be
//! verified bit-for-bit against its sequential reference.

/// The Goldilocks prime, `2^64 − 2^32 + 1`.
pub const P: u64 = 0xFFFF_FFFF_0000_0001;

/// A smallest generator of the multiplicative group of `F_p`.
pub const GENERATOR: u64 = 7;

/// `lg` of the largest power-of-two subgroup (`2^32 | p − 1`).
pub const TWO_ADICITY: u32 = 32;

/// Addition in `F_p`.
#[inline]
#[must_use]
pub fn add(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    let (s, carry) = a.overflowing_add(b);
    let mut s = s;
    if carry || s >= P {
        s = s.wrapping_sub(P);
    }
    s
}

/// Subtraction in `F_p`.
#[inline]
#[must_use]
pub fn sub(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    let (d, borrow) = a.overflowing_sub(b);
    if borrow {
        d.wrapping_add(P)
    } else {
        d
    }
}

/// Multiplication in `F_p` via 128-bit widening.
#[inline]
#[must_use]
pub fn mul(a: u64, b: u64) -> u64 {
    debug_assert!(a < P && b < P);
    ((u128::from(a) * u128::from(b)) % u128::from(P)) as u64
}

/// Exponentiation by squaring.
#[must_use]
pub fn pow(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= P;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse by Fermat's little theorem.
///
/// # Panics
/// Panics on zero.
#[must_use]
pub fn inv(a: u64) -> u64 {
    assert!(!a.is_multiple_of(P), "zero has no inverse");
    pow(a, P - 2)
}

/// A primitive `2^lg_order`-th root of unity.
///
/// # Panics
/// Panics if `lg_order > 32`.
#[must_use]
pub fn root_of_unity(lg_order: u32) -> u64 {
    assert!(
        lg_order <= TWO_ADICITY,
        "field only has 2^32-th roots of unity"
    );
    pow(GENERATOR, (P - 1) >> lg_order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(P, u64::MAX - (1 << 32) + 2);
        // g^(p-1) = 1 but g^((p-1)/2) = -1 (g is a non-residue generator).
        assert_eq!(pow(GENERATOR, P - 1), 1);
        assert_eq!(pow(GENERATOR, (P - 1) / 2), P - 1);
    }

    #[test]
    fn roots_have_exact_order() {
        for lg in [1u32, 2, 8, 16, 32] {
            let w = root_of_unity(lg);
            assert_eq!(pow(w, 1 << lg), 1, "w^(2^{lg}) = 1");
            if lg > 0 {
                assert_ne!(pow(w, 1 << (lg - 1)), 1, "w is primitive");
            }
        }
        assert_eq!(root_of_unity(0), 1);
    }

    #[test]
    fn edge_values() {
        assert_eq!(add(P - 1, 1), 0);
        assert_eq!(sub(0, 1), P - 1);
        assert_eq!(mul(P - 1, P - 1), 1, "(-1)^2 = 1");
        assert_eq!(inv(1), 1);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_rejected() {
        let _ = inv(0);
    }

    proptest! {
        #[test]
        fn field_axioms(a in 0..P, b in 0..P, c in 0..P) {
            prop_assert_eq!(add(a, b), add(b, a));
            prop_assert_eq!(mul(a, b), mul(b, a));
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
            prop_assert_eq!(sub(add(a, b), b), a);
            prop_assert_eq!(add(a, 0), a);
            prop_assert_eq!(mul(a, 1), a);
        }

        #[test]
        fn inverse_is_inverse(a in 1..P) {
            prop_assert_eq!(mul(a, inv(a)), 1);
        }

        #[test]
        fn pow_respects_addition_of_exponents(a in 1..P, x in 0u64..1000, y in 0u64..1000) {
            prop_assert_eq!(mul(pow(a, x), pow(a, y)), pow(a, x + y));
        }
    }
}
