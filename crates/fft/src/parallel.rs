//! The distributed NTT — the thesis's remap machinery applied to its
//! declared future-work target.
//!
//! "We can mention here the FFT which is based on a butterfly network
//! (i.e. a stage of the bitonic sorting network) … for which similar
//! remapping techniques can be applied" (Chapter 7). The transform is one
//! `lg N`-level butterfly, so the cyclic↔blocked technique of
//! \[CKP+93\] covers it with *two* remaps (for `N >= P²`):
//!
//! 1. remap blocked → **cyclic**: absolute bits `lg P .. lg N` are local,
//!    so the top `lg n` DIF levels run on-processor;
//! 2. remap cyclic → **blocked**: bits `0 .. lg n` are local, so the
//!    remaining `lg P` levels run on-processor;
//! 3. the DIF output is bit-reversed — and a bit-reversal is *itself* just
//!    another [`BitLayout`], so the final reordering is a third generic
//!    remap rather than special-cased code.
//!
//! Everything — layouts, gather/scatter plans, counters — is reused from
//! `bitonic-core` unchanged, which is precisely the thesis's point.

use crate::field::{inv, mul, root_of_unity};
use crate::ntt::dif_level_mapped;
use bitonic_core::layout::{blocked, cyclic};
use bitonic_core::{BitLayout, SortContext};
use spmd::{Comm, Phase};

/// The bit-reversal layout: the node with absolute address `i` lives at
/// relative address `rev(i)` (processor = high bits of the reversed
/// address, as blocked).
#[must_use]
pub fn bit_reversal_layout(lg_total: u32, lg_local: u32) -> BitLayout {
    // Relative bit j reads absolute bit (lg_total - 1 - j).
    BitLayout::new((0..lg_total).map(|j| lg_total - 1 - j).collect(), lg_local)
}

/// Forward NTT of the machine's data, natural (blocked) order in and out.
///
/// `local` is this rank's blocked slice of the coefficient vector; all
/// ranks must hold equally many coefficients.
///
/// # Panics
/// Panics unless the per-rank length is a power of two with `n >= P`
/// (`N >= P²`, the cyclic–blocked coverage condition).
pub fn parallel_ntt(comm: &mut Comm<u64>, local: Vec<u64>) -> Vec<u64> {
    parallel_transform(comm, local, false)
}

/// Inverse NTT, natural (blocked) order in and out.
pub fn parallel_intt(comm: &mut Comm<u64>, local: Vec<u64>) -> Vec<u64> {
    parallel_transform(comm, local, true)
}

fn parallel_transform(comm: &mut Comm<u64>, mut local: Vec<u64>, inverse: bool) -> Vec<u64> {
    let p = comm.procs();
    let me = comm.rank();
    let n = local.len();
    assert!(
        n.is_power_of_two(),
        "coefficients per rank must be a power of two"
    );
    let lg_n = n.trailing_zeros();
    let lg_p = p.trailing_zeros();
    let lg_total = lg_n + lg_p;
    assert!(p.is_power_of_two());

    let w_n = if inverse {
        inv(root_of_unity(lg_total))
    } else {
        root_of_unity(lg_total)
    };

    if p == 1 {
        comm.timed(Phase::Compute, |_| {
            for level in (0..lg_total).rev() {
                dif_level_mapped(&mut local, lg_total, level, level, w_n, |x| x);
            }
            crate::ntt::bit_reverse_permute(&mut local);
            if inverse {
                let n_inv = inv(n as u64);
                for v in local.iter_mut() {
                    *v = mul(*v, n_inv);
                }
            }
        });
        return local;
    }
    assert!(lg_n >= lg_p, "the two-remap FFT needs N >= P^2 (n >= P)");

    let blocked_layout = blocked(lg_total, lg_n);
    let cyclic_layout = cyclic(lg_total, lg_n);
    // All three remaps share one context: plans cached per layout pair,
    // flat pack/transfer/unpack buffers reused across applications.
    let mut ctx = SortContext::new();

    // Remap 1: blocked -> cyclic; top lg n levels are local (absolute bit
    // `level` sits at local bit `level - lg P` under cyclic).
    comm.trace.set_step(1);
    ctx.remap(comm, &blocked_layout, &cyclic_layout, &mut local);
    comm.timed(Phase::Compute, |_| {
        for level in (lg_p..lg_total).rev() {
            let local_bit = cyclic_layout
                .local_position_of(level)
                .expect("top levels are local under cyclic");
            let cy = &cyclic_layout;
            dif_level_mapped(&mut local, lg_total, level, local_bit, w_n, |x| {
                cy.abs_at(me, x)
            });
        }
    });

    // Remap 2: cyclic -> blocked; remaining lg P levels are local.
    comm.trace.set_step(2);
    ctx.remap(comm, &cyclic_layout, &blocked_layout, &mut local);
    comm.timed(Phase::Compute, |_| {
        for level in (0..lg_p).rev() {
            let bl = &blocked_layout;
            dif_level_mapped(&mut local, lg_total, level, level, w_n, |x| {
                bl.abs_at(me, x)
            });
        }
    });

    // Remap 3: undo the DIF bit reversal with a bit-reversal layout. The
    // element at absolute (storage) address i holds X[rev(i)]; placing the
    // element from storage address rev(k) at position k yields X[k].
    let rev_layout = bit_reversal_layout(lg_total, lg_n);
    comm.trace.set_step(3);
    ctx.remap(comm, &blocked_layout, &rev_layout, &mut local);

    if inverse {
        comm.timed(Phase::Compute, |_| {
            let n_inv = inv((n * p) as u64);
            for v in local.iter_mut() {
                *v = mul(*v, n_inv);
            }
        });
    }
    comm.barrier();
    local
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::P;
    use crate::ntt::{intt, ntt};
    use spmd::{run_spmd, MessageMode};

    fn run_parallel(data: &[u64], p: usize, inverse: bool) -> Vec<u64> {
        let n = data.len() / p;
        let data = data.to_vec();
        let results = run_spmd::<u64, _, _>(p, MessageMode::Long, move |comm| {
            let me = comm.rank();
            let local = data[me * n..(me + 1) * n].to_vec();
            if inverse {
                parallel_intt(comm, local)
            } else {
                parallel_ntt(comm, local)
            }
        });
        results.into_iter().flat_map(|r| r.output).collect()
    }

    fn sample(n: usize, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x % P
            })
            .collect()
    }

    #[test]
    fn matches_sequential_across_machine_sizes() {
        for (total, p) in [(64usize, 4usize), (256, 8), (1024, 16), (64, 8), (128, 1)] {
            let data = sample(total, 42);
            let mut expect = data.clone();
            ntt(&mut expect);
            assert_eq!(run_parallel(&data, p, false), expect, "N={total} P={p}");
        }
    }

    #[test]
    fn parallel_round_trip() {
        let data = sample(512, 7);
        let forward = run_parallel(&data, 8, false);
        let back = run_parallel(&forward, 8, true);
        assert_eq!(back, data);
    }

    #[test]
    fn parallel_inverse_matches_sequential() {
        let data = sample(256, 9);
        let mut expect = data.clone();
        intt(&mut expect);
        assert_eq!(run_parallel(&data, 4, true), expect);
    }

    #[test]
    fn bit_reversal_layout_is_a_permutation() {
        let l = bit_reversal_layout(6, 3);
        let mut seen = [false; 64];
        for abs in 0..64 {
            let rel = l.rel_of(abs);
            assert!(!seen[rel]);
            seen[rel] = true;
            assert_eq!(rel, crate::ntt::bit_reverse(abs, 6));
        }
    }

    #[test]
    fn exactly_three_remaps() {
        let data = sample(256, 11);
        let results = run_spmd::<u64, _, _>(4, MessageMode::Long, move |comm| {
            let me = comm.rank();
            parallel_ntt(comm, data[me * 64..(me + 1) * 64].to_vec());
        });
        for r in &results {
            assert_eq!(
                r.stats.remap_count(),
                3,
                "blocked->cyclic, ->blocked, ->bitrev"
            );
        }
    }

    #[test]
    #[should_panic(expected = "N >= P^2")]
    fn rejects_undersized_problems() {
        let _ = run_parallel(&sample(16, 1), 8, false);
    }
}
