//! `butterfly-fft` — the thesis's future-work application, realized.
//!
//! Chapter 7 of *Optimizing Parallel Bitonic Sort* closes with: "our
//! optimizations … are applicable in a large variety of applications …
//! We can mention here the FFT which is based on a butterfly network
//! (i.e. a stage of the bitonic sorting network) … for which similar
//! remapping techniques can be applied."
//!
//! This crate takes that literally. It implements an exact FFT — a
//! number-theoretic transform over the Goldilocks field, so results are
//! bit-for-bit verifiable — and distributes it over the same SPMD machine
//! using the *same* [`bitonic_core::BitLayout`] / [`bitonic_core::RemapPlan`]
//! machinery the sort uses: a blocked→cyclic remap localizes the top
//! `lg n` butterfly levels, cyclic→blocked the remaining `lg P`, and the
//! final DIF bit reversal is expressed as just another bit-pattern layout.
//!
//! ```
//! use butterfly_fft::{ntt, intt};
//! let mut v: Vec<u64> = (0..16).collect();
//! let orig = v.clone();
//! ntt(&mut v);
//! intt(&mut v);
//! assert_eq!(v, orig);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod ntt;
pub mod parallel;

pub use ntt::{intt, naive_dft, ntt, polymul};
pub use parallel::{bit_reversal_layout, parallel_intt, parallel_ntt};
