//! Closed-form communication metrics `R`, `V`, `M` of the three remapping
//! strategies (Sections 3.4.2–3.4.3).
//!
//! `R` counts communication steps (remaps), `V` the elements transferred
//! per processor over the whole sort, and `M` the messages sent per
//! processor. The formulas below are the ones derived in the thesis; the
//! *exact* smart-layout values for arbitrary `n`, `P` (including the
//! `InRemap` correction term of Section 3.2.1) are computed from the remap
//! schedule in `bitonic-core::complexity` and tested against these.

/// Per-processor communication totals of one strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommMetrics {
    /// Number of communication steps (data remaps), `R`.
    pub remaps: u64,
    /// Total elements transferred per processor, `V`.
    pub volume: u64,
    /// Total messages sent per processor, `M`.
    pub messages: u64,
}

fn lg(x: usize) -> u64 {
    assert!(x.is_power_of_two(), "{x} is not a power of two");
    u64::from(x.trailing_zeros())
}

/// Metrics of the *blocked* strategy (fixed blocked layout, pairwise
/// exchanges): `R = lgP(lgP+1)/2`, `V = n·R`, `M = R`.
///
/// Every remote step sends the whole local array of `n` keys to the
/// hypercube partner as one message.
#[must_use]
pub fn blocked(n: usize, p: usize) -> CommMetrics {
    let lgp = lg(p);
    let r = lgp * (lgp + 1) / 2;
    CommMetrics {
        remaps: r,
        volume: n as u64 * r,
        messages: r,
    }
}

/// Metrics of the *cyclic–blocked* strategy: `R = 2 lgP`,
/// `V = 2n(1 − 1/P) lgP`, `M = 2 lgP (P − 1)`.
///
/// Each of the two remaps per stage is an all-to-all in which every
/// processor sends `n/P` keys to each of the other `P − 1` processors.
#[must_use]
pub fn cyclic_blocked(n: usize, p: usize) -> CommMetrics {
    let lgp = lg(p);
    let n64 = n as u64;
    let p64 = p as u64;
    CommMetrics {
        remaps: 2 * lgp,
        volume: 2 * n64 * (p64 - 1) / p64 * lgp,
        messages: 2 * lgp * (p64 - 1),
    }
}

/// Metrics of the *smart* strategy in the common regime
/// `lgP(lgP+1)/2 <= lg n`: `R = lgP + 1`, `V = n·lgP`, and the Section
/// 3.4.3 lower bound `M >= 3(P − 1) − lgP` reported as the message count.
///
/// # Panics
/// Panics outside the common regime — use the exact schedule-driven
/// computation in `bitonic-core` there.
#[must_use]
pub fn smart_common_case(n: usize, p: usize) -> CommMetrics {
    let lgp = lg(p);
    let lgn = lg(n);
    assert!(
        lgp * (lgp + 1) / 2 <= lgn,
        "closed forms need lgP(lgP+1)/2 <= lg n; use the exact schedule instead"
    );
    let p64 = p as u64;
    CommMetrics {
        remaps: lgp + 1,
        volume: n as u64 * lgp,
        messages: 3 * (p64 - 1) - lgp,
    }
}

/// One remap of the smart schedule, produced by walking the
/// `NextStage`/`NextStep` recurrence of Definition 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmartRemapInfo {
    /// Stage the remap occurs in (`lg n + k`, 1-indexed).
    pub stage: u64,
    /// Step within the stage at which the remap occurs (1-indexed).
    pub step: u64,
    /// `N_BitsChanged` of Lemma 3 — bits of the absolute-address pattern
    /// that move from the local part into the processor part.
    pub bits_changed: u32,
    /// Whether this is the final remap back to a blocked layout.
    pub is_last: bool,
}

/// Walk the smart remap schedule arithmetically (no layouts involved) and
/// return one entry per remap, in execution order.
///
/// This follows Definition 7 and its `NextStage`/`NextStep` recurrence: the
/// first remap happens at `(stage, step) = (lg n + 1, lg n + 1)`; an inside
/// remap (`s >= lg n`) leaves `t = s − lg n` steps in its stage; a crossing
/// remap (`s < lg n`) ends in the next stage with `t = s + k + 1` steps
/// remaining. `N_BitsChanged` comes from Lemma 3, clamped by both the local
/// (`lg n`) and processor (`lg P`) address widths so the `n < P` cases of
/// the lemma fall out naturally.
///
/// # Panics
/// Panics unless `n >= 2` and both arguments are powers of two.
#[must_use]
pub fn smart_schedule(n: usize, p: usize) -> Vec<SmartRemapInfo> {
    let lgn = lg(n);
    let lgp = lg(p);
    assert!(
        lgn >= 1,
        "the smart layout needs at least two elements per processor"
    );
    let mut remaps = Vec::new();
    if lgp == 0 {
        return remaps; // single processor: everything is local
    }
    let clamp = |raw: u64| -> u32 { raw.min(lgn).min(lgp) as u32 };
    let (mut stage, mut step) = (lgn + 1, lgn + 1);
    loop {
        let k = stage - lgn;
        let is_last = k == lgp && step <= lgn;
        let bits_changed = if is_last {
            clamp(step)
        } else if step >= lgn {
            clamp(k) // inside remap
        } else {
            clamp(k + 1) // crossing remap
        };
        remaps.push(SmartRemapInfo {
            stage,
            step,
            bits_changed,
            is_last,
        });
        if is_last {
            break;
        }
        // Steps left in the stage the lg n-step block ends in (Definition 7).
        let t = if step >= lgn {
            step - lgn
        } else {
            step + k + 1
        };
        let next_stage = if step > lgn { stage } else { stage + 1 };
        let next_step = if t == 0 { next_stage } else { t };
        stage = next_stage;
        step = next_step;
        debug_assert!(stage <= lgn + lgp, "schedule walked past the last stage");
    }
    remaps
}

/// Exact `R`/`V`/`M` of the smart strategy for arbitrary `n`, `P`, from the
/// schedule walk: each remap with `r` changed bits keeps `n / 2^r` elements
/// and exchanges the rest within a group of `2^r` processors (Lemma 4).
#[must_use]
pub fn smart_exact(n: usize, p: usize) -> CommMetrics {
    let mut m = CommMetrics {
        remaps: 0,
        volume: 0,
        messages: 0,
    };
    for info in smart_schedule(n, p) {
        let r = info.bits_changed;
        m.remaps += 1;
        m.volume += n as u64 - (n as u64 >> r);
        m.messages += (1u64 << r) - 1;
    }
    m
}

/// `R_smart` for arbitrary `n`, `P`:
/// `⌈lgP + lgP(lgP+1) / (2 lg n)⌉` (Section 3.2.1).
#[must_use]
pub fn smart_remap_count(n: usize, p: usize) -> u64 {
    let lgp = lg(p);
    let lgn = lg(n);
    assert!(lgn > 0, "need at least two elements per processor");
    let total_tail_steps = lgp * lgn + lgp * (lgp + 1) / 2;
    // ceil(total_tail_steps / lgn)
    total_tail_steps.div_ceil(lgn)
}

/// `a_k = k(k−1)/2 mod lg n` — where within stage `lg n + k` the data
/// layout changes for the first time (Section 3.2.1, Figure 3.14).
#[must_use]
pub fn a_k(k: u64, lgn: u64) -> u64 {
    (k * (k - 1) / 2) % lgn
}

/// `s_k` — the step at which the first remap within stage `lg n + k`
/// occurs: `lg n + k` when `a_k = 0` (an inside remap starts right at the
/// stage boundary), `k + a_k` otherwise.
#[must_use]
pub fn s_k(k: u64, lgn: u64) -> u64 {
    let a = a_k(k, lgn);
    if a == 0 {
        lgn + k
    } else {
        k + a
    }
}

/// The exact closed-form `V_Smart` of Section 3.2.1 (valid for `n >= P`):
///
/// ```text
/// V = n ( lgP + 1/P − 1/2^{N_Last} + Σ_{k : lgn+k > s_k >= lgn} (1 − 1/2^k) )
/// ```
///
/// where the sum counts the stages with an extra `InRemap` and `N_Last`
/// is the bits changed at the final remap (Lemma 3). Tested equal to the
/// schedule-walk [`smart_exact`] over the whole grid — i.e., the thesis's
/// derivation checks out against the layouts.
#[must_use]
pub fn smart_volume_formula(n: usize, p: usize) -> u64 {
    let lgn = lg(n);
    let lgp = lg(p);
    assert!(lgn >= lgp, "the Section 3.2.1 formula assumes n >= P");
    if lgp == 0 {
        return 0;
    }
    let n64 = n as u64;
    // n·lgP + n/P covers the OutRemaps (one per stage): Σ_{k=1..lgP} n(1 − 1/2^k)
    // = n·lgP − n(1 − 1/P) = n(lgP − 1) + n/P ... keep the thesis's grouping:
    let mut v = n64 * lgp + n64 / (p as u64);
    // minus the last remap's deficit correction: the OutRemap sum already
    // charged the last stage at 1 − 1/2^{lgP}; the actual last remap
    // changes N_Last bits.
    let sched = smart_schedule(n, p);
    let n_last = sched
        .last()
        .expect("lgP >= 1 gives at least one remap")
        .bits_changed;
    v -= n64 >> n_last;
    // plus the InRemaps: stages whose first in-stage remap leaves room for
    // a second remap ending within the stage. Boundary case the thesis's
    // accounting leaves implicit: when s_{lgP} = lg n exactly, the final
    // stage's in-stage remap executes its lg n steps right up to the end of
    // the network and *is* the last remap — already covered by the
    // N_Last term — so it must not be charged again.
    for k in 1..=lgp {
        let s = s_k(k, lgn);
        if s >= lgn && s < lgn + k && !(k == lgp && s == lgn) {
            v += n64 - (n64 >> k.min(lgn));
        }
    }
    v
}

/// The volume ratio `V_cyclic-blocked / V_smart ≈ 2(1 − 1/P)` highlighted
/// at the end of Section 3.2.1.
#[must_use]
pub fn cyclic_blocked_over_smart_volume(p: usize) -> f64 {
    2.0 * (1.0 - 1.0 / p as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thesis_example_seven_remaps() {
        // Figure 3.3: N = 256, P = 16 → n = 16 is *not* in the common
        // regime (lgP(lgP+1)/2 = 10 > lg n = 4); the schedule executes 7
        // remaps while cyclic-blocked does 8.
        assert_eq!(smart_remap_count(16, 16), 7);
        assert_eq!(cyclic_blocked(16, 16).remaps, 8);
    }

    #[test]
    fn common_case_counts() {
        // P = 32, n = 2^20: lgP(lgP+1)/2 = 15 <= 20.
        let m = smart_common_case(1 << 20, 32);
        assert_eq!(m.remaps, 6);
        assert_eq!(m.volume, 5 << 20);
        assert_eq!(m.messages, 3 * 31 - 5);
        assert_eq!(smart_remap_count(1 << 20, 32), 6);
    }

    #[test]
    fn smart_beats_cyclic_blocked_on_all_metrics() {
        for (n, p) in [(1 << 20, 16), (1 << 18, 32), (1 << 16, 8)] {
            let s = smart_common_case(n, p);
            let cb = cyclic_blocked(n, p);
            assert!(s.remaps < cb.remaps, "R: {s:?} vs {cb:?}");
            assert!(s.volume < cb.volume, "V: {s:?} vs {cb:?}");
            assert!(s.messages < cb.messages, "M: {s:?} vs {cb:?}");
        }
    }

    #[test]
    fn blocked_sends_fewest_messages_but_most_volume() {
        // Section 3.4.3's observation: with respect to message count the
        // blocked version is best, but its volume is the largest.
        let (n, p) = (1 << 20, 32);
        let b = blocked(n, p);
        let s = smart_common_case(n, p);
        let cb = cyclic_blocked(n, p);
        assert!(b.messages < s.messages);
        assert!(b.messages < cb.messages);
        assert!(b.volume > s.volume);
        assert!(b.volume > cb.volume);
    }

    #[test]
    fn volume_ratio_approaches_two() {
        assert!((cyclic_blocked_over_smart_volume(2) - 1.0).abs() < 1e-12);
        assert!((cyclic_blocked_over_smart_volume(32) - 1.9375).abs() < 1e-12);
        let (n, p) = (1 << 20, 32);
        let ratio = cyclic_blocked(n, p).volume as f64 / smart_common_case(n, p).volume as f64;
        assert!((ratio - cyclic_blocked_over_smart_volume(p)).abs() < 1e-9);
    }

    #[test]
    fn remap_count_matches_head_strategy_for_small_n() {
        // n = P = 4: lg n = 2, lgP = 2 → R = ceil(2 + 3/2) = 4.
        assert_eq!(smart_remap_count(4, 4), 4);
    }

    #[test]
    fn figure_3_4_bits_changed_sequence() {
        // Figure 3.4 / Section 3.2.1 for N = 256, P = 16: the bits changed
        // at the 7 remaps are 1, 2, 3, 3, 4, 4 and finally 2.
        let bits: Vec<u32> = smart_schedule(16, 16)
            .iter()
            .map(|r| r.bits_changed)
            .collect();
        assert_eq!(bits, vec![1, 2, 3, 3, 4, 4, 2]);
    }

    #[test]
    fn schedule_walk_matches_closed_forms_in_common_regime() {
        for (n, p) in [(1usize << 20, 32), (1 << 15, 8), (1 << 10, 4), (1 << 6, 2)] {
            let exact = smart_exact(n, p);
            let closed = smart_common_case(n, p);
            assert_eq!(exact, closed, "n={n} p={p}");
        }
    }

    #[test]
    fn schedule_walk_remap_count_matches_ceiling_formula() {
        for lgn in 1..12u32 {
            for lgp in 1..8u32 {
                let (n, p) = (1usize << lgn, 1usize << lgp);
                assert_eq!(
                    smart_schedule(n, p).len() as u64,
                    smart_remap_count(n, p),
                    "n={n} p={p}"
                );
            }
        }
    }

    #[test]
    fn single_processor_needs_no_remaps() {
        assert!(smart_schedule(1 << 10, 1).is_empty());
        assert_eq!(smart_exact(1 << 10, 1).volume, 0);
    }

    #[test]
    fn schedule_executes_every_tail_step_exactly_once() {
        // The lg n-step blocks after each remap (plus the short tail of the
        // last one) must tile the last lgP stages: lgP·lgn + lgP(lgP+1)/2
        // steps in total.
        for (lgn, lgp) in [(4u64, 4u64), (6, 3), (10, 5), (3, 6), (2, 7)] {
            let (n, p) = (1usize << lgn, 1usize << lgp);
            let sched = smart_schedule(n, p);
            let mut steps = 0u64;
            for info in &sched {
                if info.is_last {
                    steps += info.step; // the tail executes `step` steps
                } else {
                    steps += lgn;
                }
            }
            assert_eq!(
                steps,
                lgp * lgn + lgp * (lgp + 1) / 2,
                "lgn={lgn} lgp={lgp}"
            );
        }
    }

    #[test]
    fn section_3_2_1_closed_form_matches_the_schedule_walk() {
        // The thesis's exact V_Smart formula vs the mechanical walk, over
        // the whole n >= P grid.
        for lgn in 1..12u32 {
            for lgp in 1..=lgn.min(7) {
                let (n, p) = (1usize << lgn, 1usize << lgp);
                assert_eq!(
                    smart_volume_formula(n, p),
                    smart_exact(n, p).volume,
                    "lgn={lgn} lgp={lgp}"
                );
            }
        }
    }

    #[test]
    fn s_k_locates_first_in_stage_remap() {
        // Cross-check s_k against the walked schedule: the first remap
        // whose position lies within stage lg n + k must be at step s_k.
        for (lgn, lgp) in [(4u64, 4u64), (6, 3), (10, 5), (5, 5)] {
            let sched = smart_schedule(1usize << lgn, 1usize << lgp);
            for k in 1..=lgp {
                let stage = lgn + k;
                if let Some(first) = sched.iter().find(|r| r.stage == stage) {
                    assert_eq!(first.step, s_k(k, lgn), "lgn={lgn} lgp={lgp} k={k}");
                }
            }
        }
    }

    #[test]
    fn bits_changed_never_exceeds_address_regions() {
        for (lgn, lgp) in [(4u32, 4u32), (2, 6), (8, 3)] {
            for info in smart_schedule(1 << lgn, 1 << lgp) {
                assert!(info.bits_changed <= lgn.min(lgp));
                assert!(info.bits_changed >= 1);
            }
        }
    }
}
