//! Model parameter sets.
//!
//! All times are in microseconds, matching the per-key units of the
//! Chapter 5 tables.

/// LogGP parameters (`L`, `o`, `g`, `G`, `P`); setting `big_g_us_per_byte`
/// equal to `g / message_bytes` degenerates to plain LogP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogGpParams {
    /// Upper bound on network latency for one message (µs).
    pub l_us: f64,
    /// Send/receive processor overhead per message (µs).
    pub o_us: f64,
    /// Minimum inter-message gap — reciprocal of short-message bandwidth
    /// (µs per message).
    pub g_us: f64,
    /// Gap per byte for long messages — reciprocal of long-message
    /// bandwidth (µs per byte).
    pub big_g_us_per_byte: f64,
    /// Number of processor/memory modules.
    pub p: usize,
}

impl LogGpParams {
    /// Calibrated approximation of the 64-node Meiko CS-2 the thesis
    /// measured (40 MHz SuperSparc nodes, Elan network co-processor, fat
    /// tree), restricted to `p` processors.
    ///
    /// The thesis does not tabulate its machine's LogGP values, so these
    /// are calibrated against its measured regimes (see DESIGN.md §6):
    ///
    /// * `g` ≈ 3.2 µs makes the short-message smart sort cost ≈13 µs/key of
    ///   communication at P = 16 (Table 5.3);
    /// * `G` = 0.01 µs/byte (≈100 MB/s effective) makes the long-message
    ///   transfer ≈ 0.15 µs/key at P = 16 (Table 5.4);
    /// * `L` and `o` are in the range reported for Active Messages on the
    ///   CS-2 (Schauser & Scheiman 1995).
    #[must_use]
    pub fn meiko_cs2(p: usize) -> Self {
        LogGpParams {
            l_us: 7.5,
            o_us: 1.7,
            g_us: 3.2,
            big_g_us_per_byte: 0.010,
            p,
        }
    }

    /// Gap per *element* for long messages, `G · key_bytes` (µs).
    #[must_use]
    pub fn big_g_per_element(&self, key_bytes: usize) -> f64 {
        self.big_g_us_per_byte * key_bytes as f64
    }

    /// Fixed per-message cost `L + 2o` (µs): the end-to-end envelope of one
    /// message with both endpoints' overheads.
    #[must_use]
    pub fn envelope_us(&self) -> f64 {
        self.l_us + 2.0 * self.o_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meiko_preset_is_consistent() {
        let m = LogGpParams::meiko_cs2(32);
        assert_eq!(m.p, 32);
        // Long messages must be far cheaper per element than short ones for
        // the Section 5.4 contrast to exist.
        assert!(m.big_g_per_element(4) < m.g_us / 10.0);
        assert!(
            m.envelope_us() > m.g_us,
            "2o + L dominates a single message"
        );
    }

    #[test]
    fn element_gap_scales_with_key_size() {
        let m = LogGpParams::meiko_cs2(16);
        assert!((m.big_g_per_element(8) - 2.0 * m.big_g_per_element(4)).abs() < 1e-12);
    }
}
