//! End-to-end execution-time prediction (µs per key).
//!
//! The experimental platform of the thesis — a 64-node Meiko CS-2 — is not
//! available, so the Chapter 5 tables are reproduced through the models the
//! thesis itself uses: LogP/LogGP for communication plus linear-cost local
//! computation (every local routine of Chapter 4 is `O(n)` per phase,
//! Section 4.4). The per-key computation constants below are calibrated
//! against Tables 5.1–5.4 (see DESIGN.md §6); the claims reproduced are the
//! *shapes* — which strategy wins, by what factor, and where crossovers
//! sit — which depend on the structure of the formulas, not the constants.

use crate::cost::{loggp_total_us, logp_total_us};
use crate::metrics::{self, CommMetrics};
use crate::params::LogGpParams;

/// Width of the thesis's keys: 32-bit integers.
pub const KEY_BYTES: usize = 4;

/// The algorithms whose per-key time the predictor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Fixed blocked layout with pairwise merge-exchanges (\[BLM+91\]).
    BlockedMerge,
    /// Periodic cyclic↔blocked remapping (\[CDMS94\]).
    CyclicBlocked,
    /// The thesis's smart layout (Algorithm 1) with fused local phases.
    Smart,
    /// Parallel LSD radix sort (long-message version of \[AISS95\]).
    RadixSort,
    /// Parallel sample sort (long-message version of \[AISS95\]).
    SampleSort,
}

impl StrategyKind {
    /// Display name used in experiment tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::BlockedMerge => "Blocked-Merge",
            StrategyKind::CyclicBlocked => "Cyclic-Blocked",
            StrategyKind::Smart => "Smart",
            StrategyKind::RadixSort => "Radix",
            StrategyKind::SampleSort => "Sample",
        }
    }
}

/// Per-key local-computation constants (µs), calibrated for the 40 MHz
/// SuperSparc nodes of the CS-2.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// One full local radix sort of 31-bit keys.
    pub radix_sort_us: f64,
    /// One `O(n)` merge phase (bitonic merge sort / p-way merge).
    pub merge_phase_us: f64,
    /// One compare-exchange step over the local array.
    pub ce_step_us: f64,
    /// The cheaper per-stage local sort of the blocked-merge baseline.
    pub stage_sort_us: f64,
    /// Packing one key into a long message (per remap), when not fused.
    pub pack_us: f64,
    /// Unpacking one key from a long message (per remap), when not fused.
    pub unpack_us: f64,
    /// Local work of parallel radix sort, per pass.
    pub radix_pass_us: f64,
    /// Local work of sample sort (sort + splitter lookup).
    pub sample_local_us: f64,
    /// Cache-miss penalty growth once the per-processor working set
    /// exceeds 2^17 keys (512 KB of keys vs the CS-2's 1 MB cache) — the
    /// drift the thesis attributes to "cache misses" under Figure 5.4.
    pub cache_alpha: f64,
}

impl CostModel {
    /// The calibration used throughout EXPERIMENTS.md.
    #[must_use]
    pub fn meiko_cs2() -> Self {
        CostModel {
            radix_sort_us: 0.20,
            merge_phase_us: 0.020,
            ce_step_us: 0.002,
            stage_sort_us: 0.010,
            pack_us: 0.070,
            unpack_us: 0.030,
            radix_pass_us: 0.104,
            sample_local_us: 0.300,
            cache_alpha: 0.07,
        }
    }

    /// Multiplier applied to computation once `n` keys (per processor)
    /// overflow the cache.
    #[must_use]
    pub fn cache_factor(&self, n: usize) -> f64 {
        let lgn = (n.max(1) as f64).log2();
        1.0 + self.cache_alpha * (lgn - 17.0).max(0.0)
    }
}

/// Whether remaps travel as short or long messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Messages {
    /// One key per message (LogP costing).
    Short,
    /// Packed per-destination messages (LogGP costing). `fused` folds the
    /// pack/unpack passes into the local computation (Section 4.3).
    Long {
        /// Pack/unpack fused into the local sorts?
        fused: bool,
    },
}

/// A per-key time prediction, split the way Figure 5.4 splits its bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Local computation, µs/key (includes fused pack/unpack).
    pub compute_us: f64,
    /// Packing, µs/key (zero when fused).
    pub pack_us: f64,
    /// Wire transfer under the chosen model, µs/key.
    pub transfer_us: f64,
    /// Unpacking, µs/key (zero when fused).
    pub unpack_us: f64,
}

impl Prediction {
    /// Total µs/key.
    #[must_use]
    pub fn total_us(&self) -> f64 {
        self.compute_us + self.pack_us + self.transfer_us + self.unpack_us
    }

    /// Communication-only µs/key (everything but compute).
    #[must_use]
    pub fn comm_us(&self) -> f64 {
        self.pack_us + self.transfer_us + self.unpack_us
    }

    /// Total seconds for `keys` keys per processor.
    #[must_use]
    pub fn total_seconds(&self, keys_per_proc: usize) -> f64 {
        self.total_us() * keys_per_proc as f64 / 1e6
    }
}

/// Communication metrics a strategy incurs, for feeding the cost model.
#[must_use]
pub fn strategy_metrics(kind: StrategyKind, n: usize, p: usize) -> CommMetrics {
    match kind {
        StrategyKind::BlockedMerge => metrics::blocked(n, p),
        StrategyKind::CyclicBlocked => metrics::cyclic_blocked(n, p),
        StrategyKind::Smart => metrics::smart_exact(n, p),
        // Both comparison sorts move essentially all data once per
        // all-to-all; radix does one exchange per pass (4 passes of 8-bit
        // digits over 31-bit keys ⇒ the top pass is skipped), sample one.
        StrategyKind::RadixSort => {
            let passes = 4u64;
            CommMetrics {
                remaps: passes,
                volume: passes * (n as u64) * (p as u64 - 1) / p as u64,
                messages: passes * (p as u64 - 1),
            }
        }
        StrategyKind::SampleSort => CommMetrics {
            remaps: 1,
            volume: n as u64 * (p as u64 - 1) / p as u64,
            messages: p as u64 - 1,
        },
    }
}

/// Predict the per-key execution time of `kind` sorting `n` keys per
/// processor on `p` processors.
#[must_use]
pub fn predict(
    kind: StrategyKind,
    n: usize,
    p: usize,
    params: &LogGpParams,
    model: &CostModel,
    messages: Messages,
) -> Prediction {
    let lgp = f64::from(p.trailing_zeros());
    let m = strategy_metrics(kind, n, p);
    // The cache penalty only applies to the bitonic variants: their merge
    // phases make strided, non-streaming passes over the working set, while
    // radix and sample sort stream sequentially (Section 5.3 attributes the
    // per-key growth of bitonic sort to cache misses).
    let cache = match kind {
        StrategyKind::RadixSort | StrategyKind::SampleSort => 1.0,
        _ => model.cache_factor(n),
    };

    let compute_per_key = match kind {
        StrategyKind::Smart => {
            // Initial radix sort + one O(n) merge phase per remap.
            model.radix_sort_us + m.remaps as f64 * model.merge_phase_us
        }
        StrategyKind::CyclicBlocked => {
            // Initial radix sort; per stage k: k compare-exchange steps
            // under the cyclic layout + one merge phase under blocked.
            model.radix_sort_us
                + model.ce_step_us * lgp * (lgp + 1.0) / 2.0
                + model.merge_phase_us * lgp
        }
        StrategyKind::BlockedMerge => {
            // Initial radix sort; per remote step a 2n-merge keeping half;
            // per stage a local sort of the remaining lg n steps.
            model.radix_sort_us
                + model.merge_phase_us * lgp * (lgp + 1.0) / 2.0
                + model.stage_sort_us * lgp
        }
        StrategyKind::RadixSort => 4.0 * model.radix_pass_us,
        StrategyKind::SampleSort => model.sample_local_us,
    } * cache;

    let (pack, unpack, transfer_total) = match messages {
        Messages::Short => (
            0.0,
            0.0,
            logp_total_us(
                params,
                CommMetrics {
                    // Short messages: every element is its own message.
                    messages: m.volume,
                    ..m
                },
            ),
        ),
        Messages::Long { fused } => {
            let t = loggp_total_us(params, m, KEY_BYTES);
            if fused {
                (0.0, 0.0, t)
            } else {
                (
                    m.remaps as f64 * model.pack_us,
                    m.remaps as f64 * model.unpack_us,
                    t,
                )
            }
        }
    };
    let n_f = n as f64;
    Prediction {
        compute_us: compute_per_key,
        pack_us: pack,
        transfer_us: transfer_total / n_f,
        unpack_us: unpack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meiko(p: usize) -> (LogGpParams, CostModel) {
        (LogGpParams::meiko_cs2(p), CostModel::meiko_cs2())
    }

    #[test]
    fn table_5_1_ordering_and_magnitudes() {
        // 32 processors, 128K–1M keys/processor: Smart < Cyclic-Blocked <
        // Blocked-Merge, with Smart around 0.5 µs/key.
        let (params, model) = meiko(32);
        for lgn in [17usize, 18, 19, 20] {
            let n = 1 << lgn;
            let fused = Messages::Long { fused: true };
            let s = predict(StrategyKind::Smart, n, 32, &params, &model, fused).total_us();
            let cb = predict(StrategyKind::CyclicBlocked, n, 32, &params, &model, fused).total_us();
            let bm = predict(StrategyKind::BlockedMerge, n, 32, &params, &model, fused).total_us();
            assert!(s < cb && cb < bm, "n=2^{lgn}: {s:.2} {cb:.2} {bm:.2}");
            assert!((0.35..0.85).contains(&s), "smart {s:.2} µs/key");
            assert!(
                bm / s > 1.6 && bm / s < 3.0,
                "blocked-merge ratio {:.2}",
                bm / s
            );
        }
    }

    #[test]
    fn table_5_3_short_vs_long_messages() {
        // 16 processors: short ≈ 13 µs/key of communication, long ≈ 1.
        let (params, model) = meiko(16);
        let n = 1 << 18;
        let short = predict(StrategyKind::Smart, n, 16, &params, &model, Messages::Short).comm_us();
        let long = predict(
            StrategyKind::Smart,
            n,
            16,
            &params,
            &model,
            Messages::Long { fused: false },
        )
        .comm_us();
        assert!((11.0..16.0).contains(&short), "short: {short:.2}");
        assert!((0.4..1.5).contains(&long), "long: {long:.2}");
        assert!(short / long > 9.0);
    }

    #[test]
    fn table_5_4_breakdown_shape() {
        // Packing dominates the long-message communication phase (~80% of
        // it together with unpacking).
        let (params, model) = meiko(16);
        let n = 1 << 18;
        let pred = predict(
            StrategyKind::Smart,
            n,
            16,
            &params,
            &model,
            Messages::Long { fused: false },
        );
        assert!(pred.pack_us > pred.transfer_us);
        assert!(pred.pack_us > pred.unpack_us);
        let overhead = (pred.pack_us + pred.unpack_us) / pred.comm_us();
        assert!(
            (0.5..0.95).contains(&overhead),
            "pack+unpack share: {overhead:.2}"
        );
    }

    #[test]
    fn figure_5_7_bitonic_beats_radix_on_16_procs() {
        let (params, model) = meiko(16);
        let fused = Messages::Long { fused: true };
        for lgn in [14usize, 16, 18, 20] {
            let n = 1 << lgn;
            let bitonic = predict(StrategyKind::Smart, n, 16, &params, &model, fused).total_us();
            let radix = predict(StrategyKind::RadixSort, n, 16, &params, &model, fused).total_us();
            let sample =
                predict(StrategyKind::SampleSort, n, 16, &params, &model, fused).total_us();
            assert!(
                bitonic < radix,
                "n=2^{lgn}: bitonic {bitonic:.2} vs radix {radix:.2}"
            );
            assert!(sample < bitonic, "sample stays the overall winner");
        }
    }

    #[test]
    fn figure_5_8_crossover_on_32_procs() {
        // On 32 processors bitonic only beats radix for small data sets.
        let (params, model) = meiko(32);
        let fused = Messages::Long { fused: true };
        let small = |k: StrategyKind| predict(k, 1 << 14, 32, &params, &model, fused).total_us();
        let large = |k: StrategyKind| predict(k, 1 << 20, 32, &params, &model, fused).total_us();
        assert!(small(StrategyKind::Smart) < small(StrategyKind::RadixSort));
        assert!(
            large(StrategyKind::Smart) > 0.9 * large(StrategyKind::RadixSort),
            "the gap must close at 1M keys/proc: {:.2} vs {:.2}",
            large(StrategyKind::Smart),
            large(StrategyKind::RadixSort)
        );
    }

    #[test]
    fn speedup_grows_with_processors() {
        // Figure 5.3: sorting a fixed 1M keys on 2..32 processors speeds up.
        let model = CostModel::meiko_cs2();
        let total = 1usize << 20;
        let mut last = f64::INFINITY;
        for p in [2usize, 4, 8, 16, 32] {
            let n = total / p;
            let params = LogGpParams::meiko_cs2(p);
            let t = predict(
                StrategyKind::Smart,
                n,
                p,
                &params,
                &model,
                Messages::Long { fused: true },
            )
            .total_seconds(n);
            assert!(t < last, "P={p}: {t:.4}s should beat {last:.4}s");
            last = t;
        }
    }

    #[test]
    fn prediction_components_sum() {
        let (params, model) = meiko(8);
        let pred = predict(
            StrategyKind::Smart,
            1 << 16,
            8,
            &params,
            &model,
            Messages::Long { fused: false },
        );
        let sum = pred.compute_us + pred.pack_us + pred.transfer_us + pred.unpack_us;
        assert!((pred.total_us() - sum).abs() < 1e-12);
        assert!((pred.comm_us() - (sum - pred.compute_us)).abs() < 1e-12);
    }
}
