//! LogP and LogGP models of parallel computation (Section 3.4).
//!
//! The thesis analyses the communication of remap-based bitonic sort under
//! two "realistic" models:
//!
//! * **LogP** (Culler et al. 1993) — short fixed-size messages,
//!   parameterized by Latency `L`, overhead `o`, gap `g` and processor
//!   count `P`;
//! * **LogGP** (Alexandrov, Ionescu, Schauser, Scheiman 1995) — adds the
//!   Gap per byte `G` for long messages.
//!
//! Three metrics determine communication time: the number of communication
//! steps `R`, the volume of elements transferred per processor `V`, and the
//! number of messages `M`. This crate provides:
//!
//! * [`params`] — parameter sets, including a Meiko CS-2 calibration;
//! * [`metrics`] — closed-form `R`/`V`/`M` for the three remapping
//!   strategies of Sections 3.4.2–3.4.3;
//! * [`cost`] — the per-remap and total communication-time formulas;
//! * [`predict`] — an end-to-end µs/key model reproducing the shape of the
//!   Chapter 5 tables from metrics alone;
//! * [`fattree`] — per-level link loads on the CS-2's fat tree, showing
//!   why the Lemma 4 group structure avoids top-switch contention;
//! * [`simulate`] — trace-driven makespan simulation, so measured per-rank
//!   imbalance (e.g. sample sort on skewed keys) shows up as time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod fattree;
pub mod metrics;
pub mod params;
pub mod predict;
pub mod simulate;

pub use cost::{loggp_total_us, logp_total_us};
pub use fattree::FatTree;
pub use metrics::CommMetrics;
pub use params::LogGpParams;
pub use predict::{CostModel, StrategyKind};
