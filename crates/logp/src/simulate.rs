//! Trace-driven LogGP makespan simulation.
//!
//! The closed forms of [`crate::cost`] price a *symmetric* communication
//! pattern. Real runs are not always symmetric: sample sort's bucket sizes
//! depend on the keys, and a skewed input funnels most of the data through
//! one processor (the contention caveat of Section 5.5). This module
//! replays the per-rank, per-step communication *traces* recorded by the
//! `spmd` machine through the LogGP cost model and computes the resulting
//! makespan, so imbalance shows up as time the way it would on the wire.
//!
//! The model per communication step `i`:
//!
//! * every rank first performs its local computation for the phase —
//!   `compute_us_per_key × (elements it currently holds)`;
//! * an all-to-all step synchronizes the participants: the step starts
//!   when the slowest participating rank arrives (bulk exchanges are
//!   barrier-like on this machine);
//! * each rank then pays its own LogGP send cost
//!   `L + 2o + G(v − m) + g(m − 1)` and additionally cannot finish before
//!   the data it *receives* has been sent into the network.

use crate::params::LogGpParams;
use crate::predict::KEY_BYTES;

/// One rank's view of one communication step, mirroring
/// `spmd::RemapRecord` (kept dependency-free: `logp` sits below `spmd`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTrace {
    /// Elements this rank sent.
    pub sent: u64,
    /// Messages this rank sent.
    pub messages: u64,
    /// Elements this rank received.
    pub received: u64,
    /// Elements this rank kept locally.
    pub kept: u64,
}

/// A full per-rank trace: `trace[rank][step]`. Ranks may have differing
/// step counts only if some ranks idle at the end (shorter traces are
/// padded with zero steps).
pub type Trace = Vec<Vec<StepTrace>>;

/// Simulated makespan (µs) of a traced run under `params`, with local
/// computation charged at `compute_us_per_key` per held element per phase.
///
/// # Panics
/// Panics on an empty trace.
#[must_use]
pub fn makespan_us(trace: &Trace, params: &LogGpParams, compute_us_per_key: f64) -> f64 {
    assert!(!trace.is_empty(), "need at least one rank");
    let steps = trace.iter().map(Vec::len).max().unwrap_or(0);
    let g_elem = params.big_g_per_element(KEY_BYTES);
    let mut clock = vec![0.0f64; trace.len()];

    for step in 0..steps {
        // Local phase before the exchange: proportional to what the rank
        // holds going in (kept + sent = its current array).
        for (r, c) in clock.iter_mut().enumerate() {
            let t = trace[r].get(step).copied().unwrap_or_default();
            *c += compute_us_per_key * (t.kept + t.sent) as f64;
        }
        // Bulk exchange: starts when every rank has arrived.
        let start = clock.iter().copied().fold(0.0f64, f64::max);
        // Send cost per rank; a rank's receive completes no earlier than
        // the largest per-sender injection the step performs (approximated
        // by its own receive volume priced at long-message bandwidth).
        for (r, c) in clock.iter_mut().enumerate() {
            let t = trace[r].get(step).copied().unwrap_or_default();
            let send_cost = if t.messages == 0 {
                0.0
            } else {
                params.envelope_us()
                    + g_elem * (t.sent.saturating_sub(t.messages)) as f64
                    + params.g_us * (t.messages as f64 - 1.0)
            };
            let recv_cost = g_elem * t.received as f64;
            *c = start + send_cost.max(recv_cost);
        }
    }
    // Final local phase: rank holds kept + received of the last step.
    let mut finish = 0.0f64;
    for (r, c) in clock.iter().enumerate() {
        let last = trace[r].last().copied().unwrap_or_default();
        let t = c + compute_us_per_key * (last.kept + last.received) as f64;
        finish = finish.max(t);
    }
    finish
}

/// Convenience: makespan per key (µs) for `total_keys` keys.
#[must_use]
pub fn makespan_us_per_key(
    trace: &Trace,
    params: &LogGpParams,
    compute_us_per_key: f64,
    total_keys: usize,
) -> f64 {
    makespan_us(trace, params, compute_us_per_key) / total_keys as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced_trace(p: usize, steps: usize, n: u64) -> Trace {
        let per = StepTrace {
            sent: n - n / p as u64,
            messages: p as u64 - 1,
            received: n - n / p as u64,
            kept: n / p as u64,
        };
        vec![vec![per; steps]; p]
    }

    #[test]
    fn balanced_trace_matches_symmetric_cost_scale() {
        let params = LogGpParams::meiko_cs2(8);
        let trace = balanced_trace(8, 4, 1 << 14);
        let t = makespan_us(&trace, &params, 0.0);
        // Four identical steps: total ≈ 4 × per-step cost of one rank.
        let per = crate::cost::loggp_remap_us(
            &params,
            (1 << 14) - (1 << 11),
            7,
            crate::predict::KEY_BYTES,
        );
        assert!((t - 4.0 * per).abs() / t < 0.05, "{t} vs {}", 4.0 * per);
    }

    #[test]
    fn skew_increases_makespan() {
        let params = LogGpParams::meiko_cs2(8);
        let n = 1u64 << 14;
        let balanced = balanced_trace(8, 1, n);
        // Same total volume, but one rank receives everything.
        let mut skewed = balanced.clone();
        for (r, rank_trace) in skewed.iter_mut().enumerate() {
            rank_trace[0].received = if r == 0 { 8 * (n - n / 8) } else { 0 };
        }
        let t_bal = makespan_us(&balanced, &params, 0.0);
        let t_skew = makespan_us(&skewed, &params, 0.0);
        assert!(
            t_skew > 2.0 * t_bal,
            "hot receiver must dominate: {t_skew:.1} vs {t_bal:.1}"
        );
    }

    #[test]
    fn compute_charges_per_held_key() {
        let params = LogGpParams::meiko_cs2(2);
        let trace = vec![
            vec![StepTrace {
                sent: 0,
                messages: 0,
                received: 0,
                kept: 100,
            }],
            vec![StepTrace {
                sent: 0,
                messages: 0,
                received: 0,
                kept: 100,
            }],
        ];
        let t = makespan_us(&trace, &params, 0.5);
        // Two phases (before and after the no-op exchange) × 100 keys × 0.5.
        assert!((t - 100.0).abs() < 1e-9, "{t}");
    }

    #[test]
    fn ragged_traces_are_padded() {
        let params = LogGpParams::meiko_cs2(2);
        let trace = vec![
            vec![
                StepTrace {
                    sent: 10,
                    messages: 1,
                    received: 10,
                    kept: 0
                };
                3
            ],
            vec![
                StepTrace {
                    sent: 10,
                    messages: 1,
                    received: 10,
                    kept: 0
                };
                1
            ],
        ];
        // Must not panic, and the 3-step rank dominates.
        let t = makespan_us(&trace, &params, 0.0);
        assert!(t > 0.0);
    }

    #[test]
    fn slowest_rank_gates_every_step() {
        // A rank with heavy compute delays everyone's exchange.
        let params = LogGpParams::meiko_cs2(4);
        let mut trace = balanced_trace(4, 2, 1 << 10);
        trace[2][0].kept = 1 << 20; // rank 2 holds a huge array in phase 0
        let t_heavy = makespan_us(&trace, &params, 0.01);
        let t_light = makespan_us(&balanced_trace(4, 2, 1 << 10), &params, 0.01);
        assert!(t_heavy > t_light + 0.01 * (1 << 20) as f64 * 0.9);
    }
}
