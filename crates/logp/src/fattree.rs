//! Fat-tree link contention (Section 3.2.1, footnote 2).
//!
//! The Meiko CS-2 connects its nodes by a fat tree. The thesis observes
//! that the smart remap's group structure — all-to-all exchanges confined
//! to *aligned groups of `2^r` consecutive processors* (Lemma 4) — "is
//! especially beneficial for network architectures like fat-trees because
//! we avoid contention at the top switch-router of the fat-tree".
//!
//! This module quantifies that: it models a full-bisection binary fat tree
//! over `P` leaves and computes, per tree level, the number of elements an
//! uplink carries during one remap, for each remapping strategy. A remap
//! whose groups span `2^r` processors pushes *zero* traffic above level
//! `r` — so every smart remap except the largest leaves the upper tree
//! idle, while every cyclic–blocked remap is a machine-wide all-to-all
//! that loads the root.

/// A full-bisection binary fat tree over `2^lg_p` leaf processors.
///
/// Level `l` (for `l` in `1..=lg_p`) is the set of uplinks leaving
/// subtrees of `2^{l-1}` leaves toward their level-`l` parent; with full
/// bisection a subtree of `2^{l-1}` leaves owns `2^{l-1}` uplinks. Level
/// `lg_p` is the root level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTree {
    lg_p: u32,
}

impl FatTree {
    /// Tree over `p = 2^lg_p` leaves.
    ///
    /// # Panics
    /// Panics if `p` is not a power of two.
    #[must_use]
    pub fn new(p: usize) -> Self {
        assert!(
            p.is_power_of_two(),
            "fat tree needs a power-of-two leaf count"
        );
        FatTree {
            lg_p: p.trailing_zeros(),
        }
    }

    /// Number of levels (`lg P`).
    #[must_use]
    pub fn levels(&self) -> u32 {
        self.lg_p
    }

    /// Elements per uplink at `level` during one *group exchange*: every
    /// processor sends `n / 2^r` elements to each other member of its
    /// aligned `2^r` group (the Lemma 4 pattern with `r = bits_changed`).
    ///
    /// A subtree of `2^{l-1}` leaves emits, per member, the elements bound
    /// for the `2^r − 2^{l-1}` group members outside it (zero when the
    /// group fits inside the subtree), spread over its `2^{l-1}` uplinks.
    #[must_use]
    pub fn group_exchange_load(&self, n: usize, r: u32, level: u32) -> f64 {
        assert!(level >= 1 && level <= self.lg_p, "levels are 1..=lg P");
        assert!(r <= self.lg_p);
        let sub = 1u64 << (level - 1); // leaves (and uplinks) per subtree
        let group = 1u64 << r;
        if group <= sub {
            return 0.0; // the whole group sits inside one subtree
        }
        let outside = group - sub;
        let per_member = n as f64 / group as f64;
        // sub members × outside partners × per-partner volume, over sub links.
        (sub as f64 * outside as f64 * per_member) / sub as f64
    }

    /// Elements per uplink at `level` during one *pairwise exchange* at
    /// hypercube distance `2^d` (every processor swaps its full `n`-element
    /// array with `rank ⊕ 2^d`) — the blocked-merge remote step.
    #[must_use]
    pub fn pairwise_exchange_load(&self, n: usize, d: u32, level: u32) -> f64 {
        assert!(level >= 1 && level <= self.lg_p);
        assert!(d < self.lg_p);
        let sub = 1u64 << (level - 1);
        if (1u64 << d) < sub {
            return 0.0; // partner inside the subtree
        }
        // Every one of the sub members' messages leaves the subtree.
        (sub as f64 * n as f64) / sub as f64
    }

    /// Root-level load of a group exchange — the top-switch contention the
    /// thesis's footnote is about.
    #[must_use]
    pub fn root_load_group(&self, n: usize, r: u32) -> f64 {
        self.group_exchange_load(n, r, self.lg_p)
    }
}

/// Total root-level traffic (elements per root uplink, summed over all
/// remaps) of the smart strategy.
#[must_use]
pub fn smart_root_traffic(n: usize, p: usize) -> f64 {
    let tree = FatTree::new(p);
    if tree.levels() == 0 {
        return 0.0;
    }
    crate::metrics::smart_schedule(n, p)
        .iter()
        .map(|info| tree.root_load_group(n, info.bits_changed))
        .sum()
}

/// Total root-level traffic of the cyclic–blocked strategy: `2 lg P`
/// machine-wide all-to-alls (`r = lg P`).
#[must_use]
pub fn cyclic_blocked_root_traffic(n: usize, p: usize) -> f64 {
    let tree = FatTree::new(p);
    if tree.levels() == 0 {
        return 0.0;
    }
    2.0 * f64::from(tree.levels()) * tree.root_load_group(n, tree.levels())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_inside_subtree_is_free() {
        let tree = FatTree::new(16);
        // Groups of 2 never cross level-2+ boundaries.
        assert_eq!(tree.group_exchange_load(1024, 1, 2), 0.0);
        assert_eq!(tree.group_exchange_load(1024, 1, 4), 0.0);
        assert!(tree.group_exchange_load(1024, 1, 1) > 0.0);
    }

    #[test]
    fn full_all_to_all_loads_every_level() {
        let tree = FatTree::new(16);
        for level in 1..=4 {
            assert!(
                tree.group_exchange_load(1024, 4, level) > 0.0,
                "level {level}"
            );
        }
        // Root load of a P-wide all-to-all: each half sends half its data
        // across: (P/2 · n/2) / (P/2 links) = n/2.
        assert_eq!(tree.root_load_group(1024, 4), 512.0);
    }

    #[test]
    fn smart_loads_the_root_less_than_cyclic_blocked() {
        for (n, p) in [(1usize << 16, 16usize), (1 << 12, 32), (1 << 10, 8)] {
            let smart = smart_root_traffic(n, p);
            let cb = cyclic_blocked_root_traffic(n, p);
            assert!(
                smart < cb / 2.0,
                "n={n} p={p}: smart {smart} vs cyclic-blocked {cb}"
            );
        }
    }

    #[test]
    fn only_full_width_smart_remaps_touch_the_root() {
        let tree = FatTree::new(16);
        let n = 1 << 12;
        let mut root_hits = 0;
        for info in crate::metrics::smart_schedule(n, 16) {
            let load = tree.root_load_group(n, info.bits_changed);
            if info.bits_changed < 4 {
                assert_eq!(
                    load, 0.0,
                    "group 2^{} must stay below the root",
                    info.bits_changed
                );
            } else {
                root_hits += 1;
            }
        }
        assert!(root_hits >= 1, "the largest remap does cross the root");
    }

    #[test]
    fn pairwise_loads_match_hypercube_distance() {
        let tree = FatTree::new(8);
        // Distance 4 (top bit) crosses every level; distance 1 only level 1.
        assert_eq!(tree.pairwise_exchange_load(100, 2, 3), 100.0);
        assert_eq!(tree.pairwise_exchange_load(100, 0, 1), 100.0);
        assert_eq!(tree.pairwise_exchange_load(100, 0, 2), 0.0);
    }

    #[test]
    fn load_decreases_up_the_tree_for_group_exchanges() {
        let tree = FatTree::new(32);
        let n = 1 << 10;
        for r in 1..=5u32 {
            let mut last = f64::INFINITY;
            for level in 1..=5u32 {
                let load = tree.group_exchange_load(n, r, level);
                assert!(load <= last, "r={r}: load must not grow with level");
                last = load;
            }
        }
    }
}
