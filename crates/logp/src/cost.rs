//! Communication-time formulas (Sections 3.4.2–3.4.3).
//!
//! Assuming `2o < g` (true for all parameter sets here), the time a
//! processor spends communicating at remap `i` is
//!
//! * LogP (short messages):  `T_i = L + 2o + g (V_i − 1)`
//! * LogGP (long messages):  `T_i = L + 2o + G (V_i − M_i) + g (M_i − 1)`
//!
//! and summing over all `R` remaps gives
//!
//! * LogP:  `T = (L + 2o − g) R + g V`
//! * LogGP: `T = (L + 2o − g) R + G (V − M) + g M`

use crate::metrics::CommMetrics;
use crate::params::LogGpParams;

/// LogP time of a single remap transferring `v` elements (µs).
#[must_use]
pub fn logp_remap_us(params: &LogGpParams, v: u64) -> f64 {
    if v == 0 {
        return 0.0;
    }
    params.envelope_us() + params.g_us * (v as f64 - 1.0)
}

/// LogGP time of a single remap transferring `v` elements in `m` messages
/// of `key_bytes`-byte keys (µs).
#[must_use]
pub fn loggp_remap_us(params: &LogGpParams, v: u64, m: u64, key_bytes: usize) -> f64 {
    if v == 0 || m == 0 {
        return 0.0;
    }
    debug_assert!(m <= v, "cannot send more messages than elements");
    params.envelope_us()
        + params.big_g_per_element(key_bytes) * (v - m) as f64
        + params.g_us * (m as f64 - 1.0)
}

/// Total LogP communication time over a whole run (µs):
/// `(L + 2o − g) R + g V`.
#[must_use]
pub fn logp_total_us(params: &LogGpParams, metrics: CommMetrics) -> f64 {
    (params.envelope_us() - params.g_us) * metrics.remaps as f64
        + params.g_us * metrics.volume as f64
}

/// Total LogGP communication time over a whole run (µs):
/// `(L + 2o − g) R + G (V − M) + g M`.
#[must_use]
pub fn loggp_total_us(params: &LogGpParams, metrics: CommMetrics, key_bytes: usize) -> f64 {
    (params.envelope_us() - params.g_us) * metrics.remaps as f64
        + params.big_g_per_element(key_bytes) * (metrics.volume - metrics.messages) as f64
        + params.g_us * metrics.messages as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    const KEY_BYTES: usize = 4;

    #[test]
    fn totals_are_sums_of_per_remap_times() {
        let p = LogGpParams::meiko_cs2(4);
        // Three remaps of equal volume/messages.
        let (v_i, m_i, r) = (100u64, 3u64, 3u64);
        let total = loggp_total_us(
            &p,
            CommMetrics {
                remaps: r,
                volume: r * v_i,
                messages: r * m_i,
            },
            KEY_BYTES,
        );
        let per = loggp_remap_us(&p, v_i, m_i, KEY_BYTES);
        assert!((total - r as f64 * per).abs() < 1e-9);

        let total_short = logp_total_us(
            &p,
            CommMetrics {
                remaps: r,
                volume: r * v_i,
                messages: r * v_i,
            },
        );
        let per_short = logp_remap_us(&p, v_i);
        assert!((total_short - r as f64 * per_short).abs() < 1e-9);
    }

    #[test]
    fn loggp_with_m_equal_v_degenerates_to_logp() {
        // One element per message is exactly the LogP regime.
        let p = LogGpParams::meiko_cs2(8);
        let m = CommMetrics {
            remaps: 5,
            volume: 1000,
            messages: 1000,
        };
        assert!((loggp_total_us(&p, m, KEY_BYTES) - logp_total_us(&p, m)).abs() < 1e-9);
    }

    #[test]
    fn long_messages_are_dramatically_cheaper() {
        // Section 5.4's contrast: same R and V, long messages collapse M.
        let p = LogGpParams::meiko_cs2(16);
        let n: u64 = 1 << 17;
        let short = CommMetrics {
            remaps: 5,
            volume: 4 * n,
            messages: 4 * n,
        };
        let long = CommMetrics {
            remaps: 5,
            volume: 4 * n,
            messages: 5 * 15,
        };
        let t_short = logp_total_us(&p, short);
        let t_long = loggp_total_us(&p, long, KEY_BYTES);
        assert!(
            t_short / t_long > 10.0,
            "expected order-of-magnitude gain, got {:.1}x",
            t_short / t_long
        );
        // Per-key figures in the Table 5.3 regime: ~13 µs vs ~1 µs.
        let per_key_short = t_short / n as f64;
        let per_key_long = t_long / n as f64;
        assert!(
            (10.0..18.0).contains(&per_key_short),
            "short: {per_key_short:.2}"
        );
        assert!(per_key_long < 1.0, "long: {per_key_long:.2}");
    }

    #[test]
    fn smart_wins_communication_time_under_logp() {
        // Section 3.4.2: smart is optimal on all three metrics with short
        // messages, hence also on time.
        let (n, procs) = (1 << 20, 32);
        let p = LogGpParams::meiko_cs2(procs);
        let t_smart = logp_total_us(&p, metrics::smart_common_case(n, procs));
        let t_cb = logp_total_us(&p, metrics::cyclic_blocked(n, procs));
        let t_blocked = logp_total_us(&p, metrics::blocked(n, procs));
        assert!(t_smart < t_cb && t_cb < t_blocked);
    }

    #[test]
    fn blocked_can_win_for_two_processors_with_long_messages() {
        // Section 3.4.3: "for a small number of processors, for example
        // P = 2 we have only one communication step and we send only one
        // message per processor and usually we achieve the best
        // communication time among the three versions."
        let (n, procs) = (1 << 20, 2);
        let p = LogGpParams::meiko_cs2(procs);
        let t_blocked = loggp_total_us(&p, metrics::blocked(n, procs), KEY_BYTES);
        let t_cb = loggp_total_us(&p, metrics::cyclic_blocked(n, procs), KEY_BYTES);
        assert!(t_blocked <= t_cb);
    }

    #[test]
    fn zero_volume_remap_is_free() {
        let p = LogGpParams::meiko_cs2(4);
        assert_eq!(logp_remap_us(&p, 0), 0.0);
        assert_eq!(loggp_remap_us(&p, 0, 0, KEY_BYTES), 0.0);
    }
}
