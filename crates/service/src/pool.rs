//! The warm worker pool: persistent machines with retained sort state.
//!
//! Every machine in the pool is a [`SpmdMachine`] whose ranks hold a
//! long-lived [`SortContext`]: remap plans computed for one batch shape
//! stay cached for every later batch of that shape, and the flat
//! pack/transfer/unpack buffers stay at working-set size. Because the
//! service pads batches to power-of-two keys per rank, the set of
//! distinct shapes is logarithmic in the size range — after a short
//! warm-up, every batch runs with a 100% plan-cache hit rate (the
//! [`PoolStats`] counters prove it).
//!
//! Failure policy: a batch that fails — watchdog expiry on a stalled
//! rank, or a panic — breaks its machine. The pool replaces the machine
//! wholesale (fresh ranks, empty caches) and reports the failure to the
//! caller; the other machines and the service keep running.

use crate::config::ServiceConfig;
use crate::metrics::ClassMetrics;
use bitonic_core::algorithms::smart_sort_ctx;
use bitonic_core::{LocalStrategy, SortContext};
use local_sorts::{RadixKey, W192};
use spmd::fault::FaultStats;
use spmd::{MachineConfig, MachineFailure, SpmdMachine};
use std::sync::Arc;
use std::time::Duration;

/// The machine type the pool manages: `u64` tagged words through ranks
/// retaining a `SortContext`, each job returning its rank's sorted slice.
pub type SortMachine = SpmdMachine<u64, SortContext<u64>, Vec<u64>>;

/// A record machine over 128-bit words (`[tag:32][key:64][rid:32]`).
pub type Record128Machine = SpmdMachine<u128, SortContext<u128>, Vec<u128>>;

/// A record machine over 192-bit words (`[tag:32][key:128][rid:32]`).
pub type Record192Machine = SpmdMachine<W192, SortContext<W192>, Vec<W192>>;

/// What the pool has done so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Batches completed successfully.
    pub batches_run: u64,
    /// Batches that failed (watchdog or panic) and broke their machine.
    pub batches_failed: u64,
    /// Machines replaced after a failed batch.
    pub machines_rebuilt: u64,
    /// Plan-cache hits summed over all ranks and batches.
    pub plan_hits: u64,
    /// Plan-cache misses summed over all ranks and batches.
    pub plan_misses: u64,
    /// Plan-cache misses of the most recent successful batch — zero once
    /// its machine has warmed to the batch's shape.
    pub last_batch_plan_misses: u64,
    /// Machines currently in the rotation (kept current across
    /// [`WarmPool::grow`]/[`WarmPool::shrink`]).
    pub machines: u64,
    /// Most machines the rotation ever held — the autoscaler's high-water
    /// mark.
    pub peak_machines: u64,
    /// Injected-fault and ARQ-recovery totals summed over every rank of
    /// every successful batch (the chaos layer's lifetime footprint on
    /// this pool).
    pub faults: FaultStats,
}

impl PoolStats {
    /// Lifetime plan-cache hit rate in `[0, 1]`.
    ///
    /// An unused pool (no hits, no misses) reports 1.0 by convention: it
    /// has never missed, and downstream `--check` gates demand a 100%
    /// steady-state rate, which a freshly idle pool should not fail.
    #[must_use]
    pub fn plan_hit_rate(&self) -> f64 {
        let total = self.plan_hits + self.plan_misses;
        if total == 0 {
            return 1.0;
        }
        self.plan_hits as f64 / total as f64
    }

    /// Fold `other` into `self` — how per-shard pool stats aggregate into
    /// one fleet view (and into the metrics registry). Event counters
    /// add; `machines` and `peak_machines` add too, because across
    /// distinct pools they measure total capacity, not one rotation's
    /// size; `last_batch_plan_misses` adds the per-pool latest batches.
    pub fn merge(&mut self, other: &PoolStats) {
        self.batches_run += other.batches_run;
        self.batches_failed += other.batches_failed;
        self.machines_rebuilt += other.machines_rebuilt;
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.last_batch_plan_misses += other.last_batch_plan_misses;
        self.machines += other.machines;
        self.peak_machines += other.peak_machines;
        self.faults.sum_merge(&other.faults);
    }
}

/// A rotation of warm [`SortMachine`]s, plus (lazily booted) one record
/// machine per record word shape. The record machines sit outside the
/// autoscaled rotation — they exist only once a record batch arrives,
/// and like the rotation they retain their `SortContext` so record
/// batch shapes warm the same remap plan cache. They are not counted in
/// the `machines` gauge, which measures plain-lane capacity.
pub struct WarmPool {
    machine_config: MachineConfig,
    strategy: LocalStrategy,
    machines: Vec<SortMachine>,
    rec128: Option<Record128Machine>,
    rec192: Option<Record192Machine>,
    next: usize,
    stats: PoolStats,
    metrics: Option<Arc<ClassMetrics>>,
}

impl std::fmt::Debug for WarmPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmPool")
            .field("machines", &self.machines.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl WarmPool {
    /// Boot `cfg.machines` warm machines of `cfg.procs` ranks each.
    #[must_use]
    pub fn new(cfg: &ServiceConfig) -> Self {
        cfg.validate();
        // Measure the local-kernel crossover table once per process, so
        // every batch this pool serves dispatches on calibrated thresholds
        // instead of the baked-in reference-host constants (the serving
        // analogue of the LogP machine constants).
        local_sorts::dispatch::ensure_calibrated();
        // The chaos layer's faults (if any) ride along; the service-level
        // batch watchdog takes precedence over a watchdog configured there,
        // because the serving layer depends on it for batch containment.
        let mut fault = cfg.fault;
        if cfg.batch_watchdog.is_some() {
            fault.watchdog = cfg.batch_watchdog;
        }
        let machine_config = MachineConfig {
            procs: cfg.procs,
            mode: cfg.mode,
            fault,
            drain_grace: cfg
                .batch_watchdog
                .map_or(Duration::from_secs(5), |w| w * 4 + Duration::from_secs(1)),
            ..MachineConfig::new(cfg.procs)
        };
        let machines: Vec<SortMachine> = (0..cfg.machines)
            .map(|_| Self::boot_machine(machine_config))
            .collect();
        let mut pool = WarmPool {
            machine_config,
            strategy: LocalStrategy::Merges,
            machines,
            rec128: None,
            rec192: None,
            next: 0,
            stats: PoolStats::default(),
            metrics: None,
        };
        pool.stats.peak_machines = pool.machines.len() as u64;
        pool.sync_gauge();
        pool
    }

    /// Hook this pool's per-batch harvest (plan cache, faults, kernels,
    /// machine gauge) into a live metrics class.
    pub(crate) fn set_metrics(&mut self, metrics: Arc<ClassMetrics>) {
        metrics.pool_machines.set(self.machines.len() as f64);
        self.metrics = Some(metrics);
    }

    /// Stamp the current pool size into every machine's gauge so each
    /// job's per-rank `CommStats` records the capacity that served it.
    fn sync_gauge(&mut self) {
        let n = self.machines.len() as u64;
        self.stats.machines = n;
        self.stats.peak_machines = self.stats.peak_machines.max(n);
        for m in &self.machines {
            m.set_pool_machines(n);
        }
        if let Some(m) = &self.metrics {
            m.pool_machines.set(n as f64);
        }
    }

    /// Add one freshly booted machine to the rotation (autoscaler
    /// scale-up). Its caches start cold and warm on its first batches.
    pub fn grow(&mut self) {
        self.machines.push(Self::boot_machine(self.machine_config));
        self.sync_gauge();
    }

    /// Retire one machine (autoscaler scale-down), never dropping below
    /// one — a pool that scaled to zero could not serve the request that
    /// wakes it. Returns whether a machine was actually retired.
    pub fn shrink(&mut self) -> bool {
        if self.machines.len() <= 1 {
            return false;
        }
        self.machines.pop();
        if self.next >= self.machines.len() {
            self.next = 0;
        }
        self.sync_gauge();
        true
    }

    fn boot_machine(config: MachineConfig) -> SortMachine {
        SpmdMachine::boot(config, |_| SortContext::new())
    }

    /// Machines currently in the rotation.
    #[must_use]
    pub fn machines(&self) -> usize {
        self.machines.len()
    }

    /// The pool's counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Sort `words` (already padded to `per_rank * procs`, see
    /// [`bitonic_core::tagged::TaggedBatch::padded_words`]) on the next
    /// machine in the rotation, returning the globally ascending words.
    ///
    /// On failure the broken machine is replaced with a fresh one and the
    /// failure returned; the pool remains usable.
    ///
    /// # Errors
    /// The [`MachineFailure`] that broke the batch.
    ///
    /// # Panics
    /// Panics if `words.len() != per_rank * procs`.
    pub fn run_batch(
        &mut self,
        words: Vec<u64>,
        per_rank: usize,
    ) -> Result<Vec<u64>, MachineFailure> {
        let procs = self.machine_config.procs;
        assert_eq!(words.len(), per_rank * procs, "batch must be padded");
        let idx = self.next;
        self.next = (self.next + 1) % self.machines.len();
        let words = Arc::new(words);
        let strategy = self.strategy;
        let result = self.machines[idx].run(move |comm, ctx| {
            let me = comm.rank();
            let local = words[me * per_rank..(me + 1) * per_rank].to_vec();
            smart_sort_ctx(comm, local, strategy, ctx)
        });
        match result {
            Ok(ranks) => {
                self.stats.batches_run += 1;
                let mut batch_misses = 0;
                let mut out = Vec::with_capacity(per_rank * procs);
                for r in ranks {
                    self.stats.plan_hits += r.stats.plan_hits;
                    self.stats.plan_misses += r.stats.plan_misses;
                    self.stats.faults.sum_merge(&r.stats.faults);
                    batch_misses += r.stats.plan_misses;
                    if let Some(m) = &self.metrics {
                        m.record_rank_stats(&r.stats);
                    }
                    out.extend_from_slice(&r.output);
                }
                self.stats.last_batch_plan_misses = batch_misses;
                Ok(out)
            }
            Err(failure) => {
                self.stats.batches_failed += 1;
                self.stats.machines_rebuilt += 1;
                if let Some(m) = &self.metrics {
                    m.machines_rebuilt.inc();
                }
                self.machines[idx] = Self::boot_machine(self.machine_config);
                self.machines[idx].set_pool_machines(self.machines.len() as u64);
                Err(failure)
            }
        }
    }

    /// Sort 128-bit record words (u32/u64 keys) on the pool's lazily
    /// booted record machine; same padding contract and failure policy
    /// as [`WarmPool::run_batch`].
    ///
    /// # Errors
    /// The [`MachineFailure`] that broke the batch.
    ///
    /// # Panics
    /// Panics if `words.len() != per_rank * procs`.
    pub fn run_record128_batch(
        &mut self,
        words: Vec<u128>,
        per_rank: usize,
    ) -> Result<Vec<u128>, MachineFailure> {
        let metrics = self.metrics.clone();
        run_record_words(
            &mut self.rec128,
            self.machine_config,
            self.strategy,
            &mut self.stats,
            metrics.as_deref(),
            words,
            per_rank,
        )
    }

    /// Sort 192-bit record words (u128 keys) on the pool's lazily
    /// booted record machine; same padding contract and failure policy
    /// as [`WarmPool::run_batch`].
    ///
    /// # Errors
    /// The [`MachineFailure`] that broke the batch.
    ///
    /// # Panics
    /// Panics if `words.len() != per_rank * procs`.
    pub fn run_record192_batch(
        &mut self,
        words: Vec<W192>,
        per_rank: usize,
    ) -> Result<Vec<W192>, MachineFailure> {
        let metrics = self.metrics.clone();
        run_record_words(
            &mut self.rec192,
            self.machine_config,
            self.strategy,
            &mut self.stats,
            metrics.as_deref(),
            words,
            per_rank,
        )
    }
}

/// Run one record batch on the (lazily booted) machine in `slot`,
/// harvesting plan-cache, fault, and kernel stats into the shared pool
/// counters exactly like the plain path. A failed batch drops the
/// machine; the next record batch of this shape boots a fresh one.
fn run_record_words<K: RadixKey>(
    slot: &mut Option<SpmdMachine<K, SortContext<K>, Vec<K>>>,
    config: MachineConfig,
    strategy: LocalStrategy,
    stats: &mut PoolStats,
    metrics: Option<&ClassMetrics>,
    words: Vec<K>,
    per_rank: usize,
) -> Result<Vec<K>, MachineFailure> {
    let procs = config.procs;
    assert_eq!(words.len(), per_rank * procs, "batch must be padded");
    let machine = slot.get_or_insert_with(|| SpmdMachine::boot(config, |_| SortContext::new()));
    let words = Arc::new(words);
    let result = machine.run(move |comm, ctx| {
        let me = comm.rank();
        let local = words[me * per_rank..(me + 1) * per_rank].to_vec();
        smart_sort_ctx(comm, local, strategy, ctx)
    });
    match result {
        Ok(ranks) => {
            stats.batches_run += 1;
            let mut batch_misses = 0;
            let mut out = Vec::with_capacity(per_rank * procs);
            for r in ranks {
                stats.plan_hits += r.stats.plan_hits;
                stats.plan_misses += r.stats.plan_misses;
                stats.faults.sum_merge(&r.stats.faults);
                batch_misses += r.stats.plan_misses;
                if let Some(m) = metrics {
                    m.record_rank_stats(&r.stats);
                }
                out.extend_from_slice(&r.output);
            }
            stats.last_batch_plan_misses = batch_misses;
            Ok(out)
        }
        Err(failure) => {
            stats.batches_failed += 1;
            stats.machines_rebuilt += 1;
            if let Some(m) = metrics {
                m.machines_rebuilt.inc();
            }
            *slot = None;
            Err(failure)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitonic_core::tagged::TaggedBatch;
    use bitonic_network::Direction;

    fn pool(procs: usize) -> WarmPool {
        let mut cfg = ServiceConfig::new(procs);
        cfg.batch_watchdog = Some(Duration::from_millis(200));
        WarmPool::new(&cfg)
    }

    fn run(pool: &mut WarmPool, keys: &[u32]) -> Vec<u32> {
        let mut batch = TaggedBatch::new();
        batch.push(keys, Direction::Ascending);
        let (words, per_rank) = batch.padded_words(pool.machine_config.procs);
        let sorted = pool.run_batch(words, per_rank).expect("batch runs");
        batch.split(&sorted).remove(0)
    }

    #[test]
    fn repeated_shapes_reach_a_perfect_hit_rate() {
        let mut p = pool(4);
        let keys: Vec<u32> = (0..256u32).rev().collect();
        let first = run(&mut p, &keys);
        assert!(first.windows(2).all(|w| w[0] <= w[1]));
        let cold = p.stats();
        assert!(cold.plan_misses > 0, "first batch computes plans");
        for _ in 0..5 {
            let out = run(&mut p, &keys);
            assert!(out.windows(2).all(|w| w[0] <= w[1]));
        }
        let warm = p.stats();
        assert_eq!(
            warm.plan_misses, cold.plan_misses,
            "steady state must not compute plans"
        );
        assert_eq!(warm.last_batch_plan_misses, 0);
        assert!(warm.plan_hits > cold.plan_hits);
        assert_eq!(warm.batches_run, 6);
    }

    #[test]
    fn grow_and_shrink_move_the_gauge_and_respect_the_floor() {
        let mut p = pool(2);
        assert_eq!(p.machines(), 1);
        assert_eq!(p.stats().machines, 1);
        p.grow();
        p.grow();
        assert_eq!(p.machines(), 3);
        assert_eq!(p.stats().machines, 3);
        assert_eq!(p.stats().peak_machines, 3);
        // Batches still come back correct across the grown rotation, and
        // every job's stats carry the current pool size.
        for _ in 0..3 {
            let out = run(&mut p, &[9, 3, 7, 1]);
            assert_eq!(out, vec![1, 3, 7, 9]);
        }
        assert!(p.shrink());
        assert_eq!(p.machines(), 2);
        assert!(p.shrink());
        assert!(!p.shrink(), "the floor is one machine");
        assert_eq!(p.machines(), 1);
        assert_eq!(p.stats().machines, 1);
        assert_eq!(p.stats().peak_machines, 3, "high-water mark sticks");
        let out = run(&mut p, &[4, 2]);
        assert_eq!(out, vec![2, 4]);
    }

    #[test]
    fn merging_empty_pool_stats_is_the_identity() {
        // Two never-used pools: the merge stays empty and the hit rate
        // keeps its by-convention 1.0 (an idle pool has never missed).
        let mut a = PoolStats::default();
        let b = PoolStats::default();
        a.merge(&b);
        assert_eq!(a.plan_hits + a.plan_misses, 0);
        assert_eq!(a.plan_hit_rate(), 1.0);
        assert_eq!(a.batches_run, 0);
        assert_eq!(a.machines, 0);
        // Empty merged into a live pool leaves it untouched.
        let mut live = PoolStats {
            batches_run: 3,
            plan_hits: 10,
            plan_misses: 2,
            machines: 2,
            peak_machines: 3,
            ..PoolStats::default()
        };
        let before = live;
        live.merge(&PoolStats::default());
        assert_eq!(live.plan_hits, before.plan_hits);
        assert_eq!(live.batches_run, before.batches_run);
        assert_eq!(live.peak_machines, before.peak_machines);
    }

    #[test]
    fn merging_saturated_pool_stats_adds_counters() {
        // A fully warmed pool (all hits) merged with a fully cold one
        // (all misses): totals add, and the rate reflects the blend.
        let mut warm = PoolStats {
            batches_run: u64::MAX / 2,
            plan_hits: 100,
            machines: 4,
            peak_machines: 4,
            ..PoolStats::default()
        };
        warm.faults.retries = 7;
        let mut cold = PoolStats {
            batches_run: 1,
            plan_misses: 100,
            machines: 1,
            peak_machines: 2,
            last_batch_plan_misses: 100,
            ..PoolStats::default()
        };
        cold.faults.retries = 5;
        cold.faults.drops_injected = 3;
        warm.merge(&cold);
        assert_eq!(warm.batches_run, u64::MAX / 2 + 1);
        assert_eq!((warm.plan_hits, warm.plan_misses), (100, 100));
        assert_eq!(warm.plan_hit_rate(), 0.5);
        assert_eq!(warm.machines, 5, "capacity across pools adds");
        assert_eq!(warm.peak_machines, 6);
        assert_eq!(warm.last_batch_plan_misses, 100);
        assert_eq!(warm.faults.retries, 12);
        assert_eq!(warm.faults.drops_injected, 3);
    }

    #[test]
    fn record_batches_sort_stably_and_warm_their_own_plan_cache() {
        use bitonic_core::tagged::{records_sorted_independently, RecordBatch};
        let mut p = pool(2);
        // Duplicate-heavy keys so stability is load-bearing.
        let keys: Vec<u64> = (0..64u64).map(|i| (i * 37) % 16).collect();
        for round in 0..3 {
            let mut batch = RecordBatch::<u128>::new();
            batch.push(&keys, Direction::Ascending);
            let (words, per_rank) = batch.padded_words(2);
            let sorted = p
                .run_record128_batch(words, per_rank)
                .expect("record batch");
            let seg = batch.split(&sorted).remove(0);
            let oracle = records_sorted_independently(&keys, Direction::Ascending);
            assert_eq!(seg.keys, oracle.keys);
            assert_eq!(seg.perm, oracle.perm, "stable permutation");
            if round > 0 {
                assert_eq!(
                    p.stats().last_batch_plan_misses,
                    0,
                    "record shapes warm too"
                );
            }
        }
        // The 192-bit machine is independent and handles >64-bit keys.
        let wide: Vec<u128> = keys.iter().map(|&k| u128::from(k) << 80).collect();
        let mut batch = RecordBatch::<W192>::new();
        batch.push(&wide, Direction::Descending);
        let (words, per_rank) = batch.padded_words(2);
        let sorted = p
            .run_record192_batch(words, per_rank)
            .expect("192-bit batch");
        let seg = batch.split(&sorted).remove(0);
        let oracle = records_sorted_independently(&wide, Direction::Descending);
        assert_eq!(seg.keys, oracle.keys);
        assert_eq!(seg.perm, oracle.perm);
        // Record machines live outside the plain rotation's gauge.
        assert_eq!(p.machines(), 1);
    }

    #[test]
    fn a_failed_batch_is_contained_and_the_pool_recovers() {
        let mut p = pool(2);
        // per_rank = 3 is not a power of two: the job's sort asserts on
        // every rank, breaking the machine.
        let bad = vec![1u64; 6];
        let err = p.run_batch(bad, 3);
        assert!(err.is_err());
        let s = p.stats();
        assert_eq!((s.batches_failed, s.machines_rebuilt), (1, 1));
        // The replacement machine serves the next batch correctly.
        let out = run(&mut p, &[5, 1, 9, 2]);
        assert_eq!(out, vec![1, 2, 5, 9]);
        assert_eq!(p.stats().batches_run, 1);
    }
}
