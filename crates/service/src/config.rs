//! Service shape: machine size, queue bounds, batching and deadline knobs.

use obs::TraceConfig;
use spmd::MessageMode;
use std::time::Duration;

/// Everything a [`crate::SortService`] needs to know at start-up.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Ranks per SPMD machine (`P`).
    pub procs: usize,
    /// Transfer regime of every batch run.
    pub mode: MessageMode,
    /// Warm machines in the pool. Batches rotate round-robin across them;
    /// a machine broken by a failed batch is replaced, not repaired.
    pub machines: usize,
    /// Flush a batch once this many keys are pending — the point past
    /// which the coalescer never waits for more load.
    pub max_batch_keys: usize,
    /// Largest single request admitted (admission control).
    pub max_request_keys: usize,
    /// Most requests allowed to wait in the queue (admission control).
    pub max_queue_requests: usize,
    /// Most keys allowed to wait in the queue (admission control).
    pub max_queue_keys: usize,
    /// Longest the coalescer may hold a request hoping for more load.
    pub max_wait: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Per-blocking-wait watchdog armed on every machine (the PR 3 fault
    /// machinery): a rank stalled past this fails its one batch with a
    /// structured `RankFailure` instead of wedging the server. `None`
    /// disables containment (a wedged batch then blocks the dispatcher).
    pub batch_watchdog: Option<Duration>,
    /// Service-level span recording (queue/batch/run/scatter phases).
    pub trace: TraceConfig,
    /// Coalescer flush threshold: stop waiting once doubling the batch
    /// would improve predicted per-key cost by less than this fraction.
    pub gain_threshold: f64,
}

impl ServiceConfig {
    /// Sensible defaults for a `procs`-rank service: generous queue
    /// bounds, 10 s request deadlines, a 2 s batch watchdog, tracing off.
    #[must_use]
    pub fn new(procs: usize) -> Self {
        ServiceConfig {
            procs,
            mode: MessageMode::Long,
            machines: 1,
            max_batch_keys: 1 << 16,
            max_request_keys: 1 << 14,
            max_queue_requests: 4096,
            max_queue_keys: 1 << 20,
            max_wait: Duration::from_millis(2),
            default_deadline: Duration::from_secs(10),
            batch_watchdog: Some(Duration::from_secs(2)),
            trace: TraceConfig::off(),
            gain_threshold: 0.05,
        }
    }

    /// Panic unless the configuration is usable.
    pub fn validate(&self) {
        assert!(self.procs > 0, "need at least one processor");
        assert!(self.machines > 0, "need at least one warm machine");
        assert!(self.max_batch_keys > 0, "batches must hold at least a key");
        assert!(
            self.max_request_keys <= self.max_batch_keys,
            "a single admitted request must fit in one batch"
        );
        assert!(
            (0.0..1.0).contains(&self.gain_threshold),
            "gain threshold is a fraction"
        );
    }
}
