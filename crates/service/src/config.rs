//! Service shape: machine size, queue bounds, batching and deadline
//! knobs — plus the sharded topology, where each size class owns a pool.
//!
//! A [`ServiceConfig`] describes one *pool*: `P`, machine count, queue
//! bounds, coalescer policy, deadlines. The single-pool
//! [`crate::SortService`] runs one of them; the sharded
//! [`crate::ShardedService`] runs a [`ShardedConfig`] — an ordered list
//! of [`ClassConfig`]s, each binding a size-class band (requests up to
//! `pool.max_request_keys`) to its own independently tuned pool. The
//! pool is the routable unit: the router, the work-stealing protocol,
//! and the autoscaler all operate on whole classes.

use crate::autoscale::AutoscaleConfig;
use obs::TraceConfig;
use spmd::{FaultConfig, MessageMode};
use std::time::Duration;

/// Everything a [`crate::SortService`] needs to know at start-up.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Ranks per SPMD machine (`P`).
    pub procs: usize,
    /// Transfer regime of every batch run.
    pub mode: MessageMode,
    /// Warm machines in the pool. Batches rotate round-robin across them;
    /// a machine broken by a failed batch is replaced, not repaired.
    pub machines: usize,
    /// Flush a batch once this many keys are pending — the point past
    /// which the coalescer never waits for more load.
    pub max_batch_keys: usize,
    /// Largest single request admitted (admission control).
    pub max_request_keys: usize,
    /// Most requests allowed to wait in the queue (admission control).
    pub max_queue_requests: usize,
    /// Most keys allowed to wait in the queue (admission control).
    pub max_queue_keys: usize,
    /// Longest the coalescer may hold a request hoping for more load.
    pub max_wait: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Per-blocking-wait watchdog armed on every machine (the PR 3 fault
    /// machinery): a rank stalled past this fails its one batch with a
    /// structured `RankFailure` instead of wedging the server. `None`
    /// disables containment (a wedged batch then blocks the dispatcher).
    pub batch_watchdog: Option<Duration>,
    /// Service-level span recording (queue/batch/run/scatter phases).
    pub trace: TraceConfig,
    /// Coalescer flush threshold: stop waiting once doubling the batch
    /// would improve predicted per-key cost by less than this fraction.
    pub gain_threshold: f64,
    /// Deterministic fault injection armed on every pool machine (the
    /// PR 3 chaos layer). [`FaultConfig::off`] (the default) gives
    /// fault-free machines; the [`ServiceConfig::batch_watchdog`] is
    /// merged in either way. Chaos tests use this to make one shard's
    /// machines genuinely fail mid-batch while its neighbors keep
    /// serving.
    pub fault: FaultConfig,
    /// Live metrics plane (`obs::metrics`): admission/batch/latency
    /// counters and histograms, SLO windows, and the LogP drift gauge.
    /// On by default — hot-path increments are relaxed atomics, so the
    /// cost is noise; turn off only for A/B overhead measurements.
    pub metrics: bool,
}

impl ServiceConfig {
    /// Sensible defaults for a `procs`-rank service: generous queue
    /// bounds, 10 s request deadlines, a 2 s batch watchdog, tracing off.
    #[must_use]
    pub fn new(procs: usize) -> Self {
        ServiceConfig {
            procs,
            mode: MessageMode::Long,
            machines: 1,
            max_batch_keys: 1 << 16,
            max_request_keys: 1 << 14,
            max_queue_requests: 4096,
            max_queue_keys: 1 << 20,
            max_wait: Duration::from_millis(2),
            default_deadline: Duration::from_secs(10),
            batch_watchdog: Some(Duration::from_secs(2)),
            trace: TraceConfig::off(),
            gain_threshold: 0.05,
            fault: FaultConfig::off(),
            metrics: true,
        }
    }

    /// Panic unless the configuration is usable.
    pub fn validate(&self) {
        assert!(self.procs > 0, "need at least one processor");
        assert!(self.machines > 0, "need at least one warm machine");
        assert!(self.max_batch_keys > 0, "batches must hold at least a key");
        assert!(
            self.max_request_keys <= self.max_batch_keys,
            "a single admitted request must fit in one batch"
        );
        assert!(
            (0.0..1.0).contains(&self.gain_threshold),
            "gain threshold is a fraction"
        );
        self.fault.validate();
    }
}

/// One size class in a sharded service: a named request-size band bound
/// to its own pool. The band's upper bound is the pool's
/// [`ServiceConfig::max_request_keys`]; the router sends a request to
/// the first class whose bound admits it.
#[derive(Debug, Clone)]
pub struct ClassConfig {
    /// Human-readable class name (`"small"`, `"bulk"`, …) used in
    /// stats, reports, and the `SHARD_1` schema.
    pub name: String,
    /// The class's pool: its own `P`, machine count, coalescer policy,
    /// queue bounds, and deadline budget. `pool.max_request_keys` is the
    /// class's size-band upper bound (inclusive).
    pub pool: ServiceConfig,
}

impl ClassConfig {
    /// A class named `name` admitting requests of up to `max_keys` keys
    /// on `pool` (whose `max_request_keys` is overwritten with
    /// `max_keys`).
    #[must_use]
    pub fn new(name: &str, max_keys: usize, mut pool: ServiceConfig) -> Self {
        pool.max_request_keys = max_keys;
        pool.max_batch_keys = pool.max_batch_keys.max(max_keys);
        ClassConfig {
            name: name.to_string(),
            pool,
        }
    }
}

/// Bulk-sort policy: what happens to a request larger than every band.
///
/// Disabled (the default), over-band requests are shed as
/// [`crate::Rejection::TooLarge`], exactly the pre-bulk behavior. Enabled,
/// the [`crate::split`] subsystem selects splitters from one oversampled
/// sampling round (arXiv 2204.04599: oversampling by
/// `ceil(2 ln s / eps^2)` per splitter bounds partition skew by
/// `1 + eps` with high probability), scatters the keys into per-shard
/// sub-requests that ride the normal admission/coalesce/pool path, and
/// k-way merges the sorted partitions into one reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BulkConfig {
    /// Master switch: accept over-band requests via split/scatter/merge.
    pub enabled: bool,
    /// Skew bound `1 + eps` the splitter selector targets: no partition
    /// should exceed `skew_bound` times its capacity-weighted share on
    /// random input. Drives the oversampling ratio. Must exceed 1.
    pub skew_bound: f64,
    /// Deadline headroom reserved for the reply-side k-way merge:
    /// sub-requests carry the parent deadline minus this budget, so a
    /// parent whose partitions finish in time cannot expire mid-merge.
    pub merge_budget: Duration,
    /// Seed of the deterministic sampling round. Splitter selection is a
    /// pure function of `(keys, shard bands, seed)`, which is what lets
    /// the [`crate::ShardEngine`] twin replay a scatter/merge schedule
    /// bit-for-bit.
    pub seed: u64,
}

impl Default for BulkConfig {
    fn default() -> Self {
        BulkConfig {
            enabled: false,
            skew_bound: 1.5,
            merge_budget: Duration::from_millis(50),
            seed: 0x5EED_5911,
        }
    }
}

impl BulkConfig {
    /// The default policy with the master switch on.
    #[must_use]
    pub fn on() -> Self {
        BulkConfig {
            enabled: true,
            ..BulkConfig::default()
        }
    }

    /// Panic unless the policy is usable.
    pub fn validate(&self) {
        assert!(
            self.skew_bound > 1.0,
            "skew bound is a multiple of the fair share and must exceed 1"
        );
    }
}

/// A sharded service: ordered size classes, the steal policy, the
/// autoscaler, and the bulk-sort policy. See [`crate::ShardedService`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Size classes in ascending band order (`pool.max_request_keys`
    /// strictly increasing). A request routes to the first class that
    /// admits it; requests beyond the last band are shed as too large —
    /// unless [`ShardedConfig::bulk`] is enabled, in which case they are
    /// split across shards and merged on reply.
    pub classes: Vec<ClassConfig>,
    /// Work stealing: an idle shard may claim the oldest compatible
    /// batch from a neighbor whose head request has waited at least this
    /// long. `None` disables stealing.
    pub steal_after: Option<Duration>,
    /// Per-shard machine autoscaling from LogP-predicted queue drain
    /// time. `None` pins every pool at its configured machine count.
    pub autoscale: Option<AutoscaleConfig>,
    /// Span recording for the router and every shard worker.
    pub trace: TraceConfig,
    /// Cross-shard bulk sorts for requests beyond every band.
    pub bulk: BulkConfig,
}

impl ShardedConfig {
    /// A `shards`-way geometric banding of the default service shape:
    /// class `i` admits requests up to `max_request_keys >> (shards-1-i)`
    /// keys with one `procs`-rank machine each, stealing after 1 ms,
    /// autoscaling off. Two shards give the canonical small/bulk split.
    ///
    /// # Panics
    /// Panics if `shards == 0` or the banding degenerates (too many
    /// shards for the key range).
    #[must_use]
    pub fn banded(procs: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let base = ServiceConfig::new(procs);
        let names = ["small", "medium", "large", "bulk"];
        let classes = (0..shards)
            .map(|i| {
                let bound = base.max_request_keys >> (shards - 1 - i);
                let name = if shards <= names.len() {
                    names[if i + 1 == shards { names.len() - 1 } else { i }].to_string()
                } else {
                    format!("class{i}")
                };
                let mut pool = base;
                // Small classes answer interactive load: flush eagerly.
                if i + 1 < shards {
                    pool.max_wait = Duration::from_micros(200);
                }
                ClassConfig::new(&name, bound, pool)
            })
            .collect();
        let cfg = ShardedConfig {
            classes,
            steal_after: Some(Duration::from_millis(1)),
            autoscale: None,
            trace: TraceConfig::off(),
            bulk: BulkConfig::default(),
        };
        cfg.validate();
        cfg
    }

    /// [`ShardedConfig::banded`] with bulk sorts enabled: requests beyond
    /// the widest band are split across the shards and merged on reply
    /// instead of being shed as too large.
    #[must_use]
    pub fn banded_bulk(procs: usize, shards: usize) -> Self {
        let mut cfg = ShardedConfig::banded(procs, shards);
        cfg.bulk = BulkConfig::on();
        cfg
    }

    /// Total machines across all pools (the figure to hold constant when
    /// comparing sharded against single-pool serving).
    #[must_use]
    pub fn total_machines(&self) -> usize {
        self.classes.iter().map(|c| c.pool.machines).sum()
    }

    /// Panic unless the topology is usable: at least one class, every
    /// pool valid, and bands strictly increasing.
    pub fn validate(&self) {
        assert!(!self.classes.is_empty(), "need at least one size class");
        let mut prev = 0usize;
        for c in &self.classes {
            c.pool.validate();
            assert!(
                c.pool.max_request_keys > prev,
                "class '{}' band {} must exceed the previous band {prev}",
                c.name,
                c.pool.max_request_keys
            );
            prev = c.pool.max_request_keys;
        }
        if let Some(a) = &self.autoscale {
            a.validate();
        }
        self.bulk.validate();
    }
}
