//! Sharded serving: a size-class router over multiple warm pools, with
//! work stealing and predictive autoscaling.
//!
//! One pool serves every request shape poorly: the coalescer tuned for
//! bulk throughput holds small interactive sorts hostage, and the one
//! tuned for latency never amortizes the big ones. Sharding splits the
//! request-size spectrum into bands ([`crate::ShardedConfig`]), gives
//! each band its own pool — its own `P`, coalescer, plan cache, machine
//! count — and routes every request to the narrowest band that admits
//! it ([`Router`]).
//!
//! ```text
//!  clients ──submit──▶ [router] ──▶ shard 0 (small)  [queue]─▶ pool
//!                         │    ───▶ shard 1 (bulk)   [queue]─▶ pool
//!                         │              ▲ steal ▲
//!                         └── size-class │ bands │ autoscaler
//! ```
//!
//! Two mechanisms keep the split from stranding capacity:
//!
//! * **Work stealing** — an idle shard claims the oldest compatible
//!   batch from a *busy* neighbor's queue (head waited at least
//!   `steal_after`), re-coalescing it under its own cost model. The
//!   claim is exactly the FIFO prefix the victim itself would have
//!   taken (`server::take_prefix`), so replies are unchanged —
//!   only who computes them.
//! * **Predictive autoscaling** — each shard feeds queue snapshots to an
//!   [`Autoscaler`], growing its pool when the LogP-predicted drain
//!   time overshoots the class's deadline budget and shrinking it after
//!   sustained idleness (never below one machine).
//!
//! When [`crate::BulkConfig::enabled`], a third mechanism lifts the
//! shard layer from isolation to aggregate capacity: a request larger
//! than every band is split by [`crate::split`] into per-shard in-band
//! sub-requests (one oversampled splitter-selection round), each rides
//! the normal admission/coalesce/pool path above, and a coordinator
//! k-way merges the sorted partitions into the parent's reply.
//!
//! Both services here answer identically to a single pool — the
//! property tests in `tests/shard.rs` prove replies are byte-identical.
//! [`ShardedService`] is the production front door (one worker thread
//! per shard). [`ShardEngine`] is the same policy stack run
//! *synchronously under virtual time*: every routing, flush, steal and
//! scale decision is a pure function of the scripted submission times,
//! so tests replay a scenario and demand bit-for-bit identical event
//! logs.

use crate::admission::{Admission, Rejection};
use crate::autoscale::{Autoscaler, ScaleVerdict};
use crate::coalescer::{Coalescer, Verdict};
use crate::config::{BulkConfig, ServiceConfig, ShardedConfig};
use crate::metrics::ServiceMetrics;
use crate::pool::{PoolStats, WarmPool};
use crate::router::Router;
use crate::server::{
    gather_rows, process_batch, take_prefix, Lane, Pending, PendingWork, RecordKeys, RecordReply,
    RecordRequest, RecordTicket, SortError, SortRequest, Ticket,
};
use crate::split::{self, BulkFailure, BulkReason};
use bitonic_core::tagged::{RecordBatch, RecordWord, TaggedBatch};
use bitonic_network::Direction;
use local_sorts::W192;
use obs::{RankTrace, TracePhase, TraceSink};
use std::cmp::Reverse;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A steal candidate as seen by an idle shard: the victim's index, its
/// head request's age and key count, and whether the victim's worker is
/// currently busy running a batch.
pub(crate) type StealHead = (usize, Duration, usize, bool);

/// Pick the victim an idle thief should steal from: among busy shards
/// whose head request has waited at least `steal_after` and fits
/// `thief_capacity` keys, the one with the *oldest* head (ties go to the
/// lowest shard index). Pure and deterministic — shared by the threaded
/// workers and the virtual-time engine so both steal identically.
pub(crate) fn pick_victim(
    heads: &[StealHead],
    steal_after: Duration,
    thief_capacity: usize,
) -> Option<usize> {
    heads
        .iter()
        .filter(|(_, age, keys, busy)| *busy && *age >= steal_after && *keys <= thief_capacity)
        .max_by_key(|(shard, age, _, _)| (*age, Reverse(*shard)))
        .map(|(shard, _, _, _)| *shard)
}

/// One shard's lifetime counters.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// The class name this shard serves.
    pub class: String,
    /// Requests the router sent here.
    pub submitted: u64,
    /// Requests past this shard's admission control.
    pub admitted: u64,
    /// Requests shed by this shard's admission control.
    pub shed: u64,
    /// Admitted requests that out-waited their deadline.
    pub expired: u64,
    /// Admitted requests lost to a failed batch.
    pub failed: u64,
    /// Requests answered with sorted keys (including stolen ones — the
    /// thief gets the credit).
    pub completed: u64,
    /// Batches this shard ran (own and stolen).
    pub batches: u64,
    /// Useful keys across those batches.
    pub batched_keys: u64,
    /// Most requests in one batch.
    pub largest_batch: u64,
    /// Batches this shard stole from neighbors.
    pub steals: u64,
    /// Requests claimed across those steals.
    pub stolen_requests: u64,
    /// Times the autoscaler grew this shard's pool.
    pub scale_ups: u64,
    /// Times the autoscaler shrank this shard's pool.
    pub scale_downs: u64,
    /// The shard's pool counters (machines, rebuilds, plan cache).
    pub pool: PoolStats,
}

/// Whole-service counters: one [`ShardStats`] per shard plus the
/// requests no band admitted.
#[derive(Debug, Clone, Default)]
pub struct ShardedStats {
    /// Per-shard counters, in class order.
    pub shards: Vec<ShardStats>,
    /// Requests larger than every band (shed at the router).
    pub unroutable: u64,
    /// Over-band requests admitted through the bulk split path.
    pub bulk_submitted: u64,
    /// Bulk requests answered with a merged sorted reply.
    pub bulk_completed: u64,
    /// Bulk requests failed by a sub-request (shed/expired/failed).
    pub bulk_failed: u64,
}

impl ShardedStats {
    /// Requests answered with sorted keys, summed over shards.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed).sum()
    }

    /// Requests shed anywhere (router or shard admission).
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.unroutable + self.shards.iter().map(|s| s.shed).sum::<u64>()
    }

    /// Admitted requests that expired in a queue, summed over shards.
    #[must_use]
    pub fn expired(&self) -> u64 {
        self.shards.iter().map(|s| s.expired).sum()
    }

    /// Admitted requests lost to failed batches, summed over shards.
    #[must_use]
    pub fn failed(&self) -> u64 {
        self.shards.iter().map(|s| s.failed).sum()
    }

    /// Batches stolen, summed over shards.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.shards.iter().map(|s| s.steals).sum()
    }
}

/// What a finished sharded service hands back.
#[derive(Debug)]
pub struct ShardedReport {
    /// Final counters.
    pub stats: ShardedStats,
    /// One span timeline per shard worker (queue/batch/run/scatter plus
    /// steal and scale spans), in class order.
    pub shard_traces: Vec<RankTrace>,
    /// The router's timeline (one `Route` span per admitted request,
    /// `step` carrying the shard index).
    pub router_trace: RankTrace,
}

struct ShardQueue {
    pending: VecDeque<Pending>,
    pending_keys: usize,
    /// The shard's worker is currently off running a batch — the signal
    /// that makes an aged queue *stealable* (an idle victim flushes its
    /// own queue within `max_wait`; stealing from it would just churn).
    busy: bool,
    stats: ShardStats,
}

struct MultiQueue {
    shards: Vec<ShardQueue>,
    closed: bool,
    unroutable: u64,
    bulk_submitted: u64,
    bulk_completed: u64,
    bulk_failed: u64,
    router_sink: TraceSink,
}

struct SharedShards {
    q: Mutex<MultiQueue>,
    cv: Condvar,
}

/// A running sharded sort service: one worker thread per size class,
/// each owning its shard's [`WarmPool`].
///
/// Submissions are accepted from any thread; dropping the service (or
/// calling [`ShardedService::shutdown`]) drains every queue and joins
/// the workers.
pub struct ShardedService {
    shared: Arc<SharedShards>,
    router: Router,
    admissions: Vec<Admission>,
    deadlines: Vec<Duration>,
    bulk: BulkConfig,
    bands: Vec<usize>,
    metrics: Option<Arc<ServiceMetrics>>,
    workers: Vec<std::thread::JoinHandle<RankTrace>>,
    /// One coordinator per in-flight bulk request, joined at shutdown so
    /// the final stats include every scatter/merge in flight.
    bulk_workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ShardedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedService")
            .field("shards", &self.router.shards())
            .finish_non_exhaustive()
    }
}

impl ShardedService {
    /// Boot every shard's pool and start one worker per shard.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`ShardedConfig::validate`].
    #[must_use]
    pub fn start(cfg: ShardedConfig) -> Self {
        cfg.validate();
        let router = Router::new(&cfg);
        let epoch = Instant::now();
        let shards = cfg
            .classes
            .iter()
            .map(|c| ShardQueue {
                pending: VecDeque::new(),
                pending_keys: 0,
                busy: false,
                stats: ShardStats {
                    class: c.name.clone(),
                    ..ShardStats::default()
                },
            })
            .collect();
        let shared = Arc::new(SharedShards {
            q: Mutex::new(MultiQueue {
                shards,
                closed: false,
                unroutable: 0,
                bulk_submitted: 0,
                bulk_completed: 0,
                bulk_failed: 0,
                router_sink: TraceSink::new(cfg.classes.len(), cfg.trace, epoch),
            }),
            cv: Condvar::new(),
        });
        let admissions = cfg
            .classes
            .iter()
            .map(|c| Admission::new(&c.pool))
            .collect();
        let deadlines = cfg
            .classes
            .iter()
            .map(|c| c.pool.default_deadline)
            .collect();
        let metrics = cfg
            .classes
            .iter()
            .any(|c| c.pool.metrics)
            .then(|| ServiceMetrics::for_sharded(&cfg));
        let workers = (0..cfg.classes.len())
            .map(|i| {
                let shared = Arc::clone(&shared);
                let cfg = cfg.clone();
                let metrics = metrics.clone();
                std::thread::spawn(move || shard_worker(&cfg, i, epoch, &shared, metrics))
            })
            .collect();
        ShardedService {
            bulk: cfg.bulk,
            bands: router.band_capacities(),
            shared,
            router,
            admissions,
            deadlines,
            metrics,
            workers,
            bulk_workers: Mutex::new(Vec::new()),
        }
    }

    /// The live metrics plane, when any class's
    /// [`ServiceConfig::metrics`] is on. All shards share one registry;
    /// series are told apart by their `class` label. The handle stays
    /// valid after [`ShardedService::shutdown`] if cloned first.
    #[must_use]
    pub fn metrics(&self) -> Option<Arc<ServiceMetrics>> {
        self.metrics.clone()
    }

    /// Submit a request: route it to its size class, apply that shard's
    /// admission control, and enqueue it. Requests larger than every
    /// band are shed as [`Rejection::TooLarge`] against the widest band —
    /// unless [`crate::BulkConfig::enabled`], in which case they are
    /// split across the shards and merged on reply (see [`crate::split`]).
    ///
    /// # Errors
    /// The [`Rejection`] naming the limit the request hit.
    pub fn submit(&self, request: SortRequest) -> Result<Ticket, Rejection> {
        let t0 = Instant::now();
        let mut q = self.shared.q.lock().expect("shard queues lock");
        if q.closed {
            return Err(Rejection::Closed);
        }
        let Some(shard) = self.router.route(request.keys.len()) else {
            if self.bulk.enabled {
                drop(q);
                return self.submit_bulk(request);
            }
            q.unroutable += 1;
            if let Some(m) = self.metrics.as_deref() {
                m.unroutable.inc();
            }
            return Err(self.router.too_large(request.keys.len()));
        };
        let cm = self.metrics.as_deref().map(|m| m.class(shard));
        let deadline = request.deadline.unwrap_or(self.deadlines[shard]);
        let sq = &mut q.shards[shard];
        sq.stats.submitted += 1;
        if let Some(m) = &cm {
            m.submitted.inc();
        }
        if let Err(r) = self.admissions[shard].admit(
            sq.pending.len(),
            sq.pending_keys,
            request.keys.len(),
            deadline,
        ) {
            sq.stats.shed += 1;
            if let Some(m) = &cm {
                m.record_shed(&r);
            }
            return Err(r);
        }
        sq.stats.admitted += 1;
        sq.pending_keys += request.keys.len();
        if let Some(m) = &cm {
            m.admitted.inc();
            m.set_queue(sq.pending.len() + 1, sq.pending_keys);
        }
        let (reply, rx) = mpsc::channel();
        sq.pending.push_back(Pending {
            work: PendingWork::Plain {
                keys: request.keys,
                reply,
            },
            dir: request.dir,
            deadline,
            enqueued: t0,
        });
        q.router_sink.set_step(shard as u32);
        q.router_sink.span(TracePhase::Route, t0, Instant::now());
        drop(q);
        self.shared.cv.notify_all();
        Ok(Ticket { rx })
    }

    /// Submit a record request: same routing and admission as
    /// [`ShardedService::submit`] (a record counts its keys), with the
    /// payload riding the queue and coming back in key order. Over-band
    /// record requests take the bulk split path when enabled — payload
    /// rows are scattered with their keys and merged stably on reply.
    ///
    /// # Errors
    /// The [`Rejection`] naming the limit the request hit.
    pub fn submit_record(&self, request: RecordRequest) -> Result<RecordTicket, Rejection> {
        assert_eq!(
            request.payload.len(),
            request.stride * request.keys.len(),
            "payload must hold exactly stride bytes per key"
        );
        let t0 = Instant::now();
        let mut q = self.shared.q.lock().expect("shard queues lock");
        if q.closed {
            return Err(Rejection::Closed);
        }
        let Some(shard) = self.router.route(request.keys.len()) else {
            if self.bulk.enabled {
                drop(q);
                return self.submit_record_bulk(request);
            }
            q.unroutable += 1;
            if let Some(m) = self.metrics.as_deref() {
                m.unroutable.inc();
            }
            return Err(self.router.too_large(request.keys.len()));
        };
        let cm = self.metrics.as_deref().map(|m| m.class(shard));
        let deadline = request.deadline.unwrap_or(self.deadlines[shard]);
        let sq = &mut q.shards[shard];
        sq.stats.submitted += 1;
        if let Some(m) = &cm {
            m.submitted.inc();
        }
        if let Err(r) = self.admissions[shard].admit(
            sq.pending.len(),
            sq.pending_keys,
            request.keys.len(),
            deadline,
        ) {
            sq.stats.shed += 1;
            if let Some(m) = &cm {
                m.record_shed(&r);
            }
            return Err(r);
        }
        sq.stats.admitted += 1;
        sq.pending_keys += request.keys.len();
        if let Some(m) = &cm {
            m.admitted.inc();
            m.set_queue(sq.pending.len() + 1, sq.pending_keys);
        }
        let (reply, rx) = mpsc::channel();
        sq.pending.push_back(Pending {
            work: PendingWork::Record {
                keys: request.keys,
                payload: request.payload,
                stride: request.stride,
                reply,
            },
            dir: request.dir,
            deadline,
            enqueued: t0,
        });
        q.router_sink.set_step(shard as u32);
        q.router_sink.span(TracePhase::Route, t0, Instant::now());
        drop(q);
        self.shared.cv.notify_all();
        Ok(RecordTicket { rx })
    }

    /// Dispatch an over-band record request to the width-typed bulk
    /// scatter path.
    fn submit_record_bulk(&self, request: RecordRequest) -> Result<RecordTicket, Rejection> {
        let RecordRequest {
            keys,
            payload,
            stride,
            dir,
            deadline,
        } = request;
        match keys {
            RecordKeys::U32(k) => self.record_bulk(
                k,
                payload,
                stride,
                dir,
                deadline,
                RecordKeys::U32,
                |rk| match rk {
                    RecordKeys::U32(v) => v,
                    _ => unreachable!("width is fixed per bulk request"),
                },
            ),
            RecordKeys::U64(k) => self.record_bulk(
                k,
                payload,
                stride,
                dir,
                deadline,
                RecordKeys::U64,
                |rk| match rk {
                    RecordKeys::U64(v) => v,
                    _ => unreachable!("width is fixed per bulk request"),
                },
            ),
            RecordKeys::U128(k) => self.record_bulk(
                k,
                payload,
                stride,
                dir,
                deadline,
                RecordKeys::U128,
                |rk| match rk {
                    RecordKeys::U128(v) => v,
                    _ => unreachable!("width is fixed per bulk request"),
                },
            ),
        }
    }

    /// The record bulk path: [`split::plan_records`] scatters keys and
    /// their payload rows into per-shard in-band record sub-requests
    /// under the same two-phase admission as the plain bulk path; a
    /// coordinator merges the sorted partitions stably (key ties break
    /// toward the earlier partition) into the parent's reply.
    #[allow(clippy::too_many_arguments)]
    fn record_bulk<K: Copy + Ord + Send + Sync + 'static>(
        &self,
        keys: Vec<K>,
        payload: Vec<u8>,
        stride: usize,
        dir: Direction,
        deadline: Option<Duration>,
        wrap: impl Fn(Vec<K>) -> RecordKeys + Send + 'static,
        unwrap: impl Fn(RecordKeys) -> Vec<K> + Send + 'static,
    ) -> Result<RecordTicket, Rejection> {
        let t0 = Instant::now();
        let plan = split::plan_records(&keys, &self.bands, &self.bulk);
        let nparts = plan.parts.len();
        let parent_deadline =
            deadline.unwrap_or_else(|| *self.deadlines.last().expect("at least one shard"));
        let sub_deadline = parent_deadline.saturating_sub(self.bulk.merge_budget);
        let (parent_tx, parent_rx) = mpsc::channel();
        let mut q = self.shared.q.lock().expect("shard queues lock");
        if q.closed {
            return Err(Rejection::Closed);
        }
        q.bulk_submitted += 1;
        if let Some(m) = self.metrics.as_deref() {
            m.bulk_submitted.inc();
            m.bulk_parts.add(nparts as u64);
            m.bulk_samples.add(plan.samples as u64);
            for s in &plan.skew {
                m.bulk_skew_permille.observe((s * 1000.0).round() as u64);
            }
        }
        let mut extra_len = vec![0usize; q.shards.len()];
        let mut extra_keys = vec![0usize; q.shards.len()];
        let mut refused = None;
        for part in &plan.parts {
            let sq = &q.shards[part.shard];
            if let Err(r) = self.admissions[part.shard].admit(
                sq.pending.len() + extra_len[part.shard],
                sq.pending_keys + extra_keys[part.shard],
                part.keys.len(),
                sub_deadline,
            ) {
                refused = Some(BulkFailure {
                    shard: part.shard,
                    reason: BulkReason::Shed(r),
                });
                break;
            }
            extra_len[part.shard] += 1;
            extra_keys[part.shard] += part.keys.len();
        }
        if let Some(failure) = refused {
            q.bulk_failed += 1;
            if let Some(m) = self.metrics.as_deref() {
                m.bulk_failed.inc();
            }
            drop(q);
            let _ = parent_tx.send(Err(SortError::Bulk(failure)));
            return Ok(RecordTicket { rx: parent_rx });
        }
        let mut subs = Vec::with_capacity(nparts);
        for part in plan.parts {
            let sq = &mut q.shards[part.shard];
            sq.stats.submitted += 1;
            sq.stats.admitted += 1;
            sq.pending_keys += part.keys.len();
            if let Some(m) = self.metrics.as_deref() {
                let cm = m.class(part.shard);
                cm.submitted.inc();
                cm.admitted.inc();
                cm.set_queue(sq.pending.len() + 1, sq.pending_keys);
            }
            let (reply, rx) = mpsc::channel();
            sq.pending.push_back(Pending {
                work: PendingWork::Record {
                    keys: wrap(part.keys),
                    payload: gather_rows(&payload, stride, &part.rows),
                    stride,
                    reply,
                },
                dir,
                deadline: sub_deadline,
                enqueued: t0,
            });
            subs.push((part.shard, rx));
        }
        q.router_sink.set_step(nparts as u32);
        q.router_sink.span(TracePhase::Split, t0, Instant::now());
        let shared = Arc::clone(&self.shared);
        let metrics = self.metrics.clone();
        let worker = std::thread::spawn(move || {
            record_bulk_coordinator(
                &shared,
                metrics.as_deref(),
                dir,
                stride,
                subs,
                &parent_tx,
                wrap,
                unwrap,
            );
        });
        self.bulk_workers
            .lock()
            .expect("bulk worker list")
            .push(worker);
        drop(q);
        self.shared.cv.notify_all();
        Ok(RecordTicket { rx: parent_rx })
    }

    /// The bulk path: split an over-band request into per-shard in-band
    /// sub-requests, enqueue them through each shard's normal admission,
    /// and hand reassembly to a coordinator thread. The parent's ticket
    /// resolves to the merged keys, or to [`SortError::Bulk`] naming the
    /// first shard whose partition sank.
    fn submit_bulk(&self, request: SortRequest) -> Result<Ticket, Rejection> {
        let t0 = Instant::now();
        // Splitter selection is pure CPU over the keys; keep it outside
        // the queue lock.
        let plan = split::plan(&request.keys, &self.bands, &self.bulk);
        let nparts = plan.parts.len();
        let dir = request.dir;
        let parent_deadline = request
            .deadline
            .unwrap_or_else(|| *self.deadlines.last().expect("at least one shard"));
        let sub_deadline = parent_deadline.saturating_sub(self.bulk.merge_budget);
        let (parent_tx, parent_rx) = mpsc::channel();
        let mut q = self.shared.q.lock().expect("shard queues lock");
        if q.closed {
            return Err(Rejection::Closed);
        }
        q.bulk_submitted += 1;
        if let Some(m) = self.metrics.as_deref() {
            m.bulk_submitted.inc();
            m.bulk_parts.add(nparts as u64);
            m.bulk_samples.add(plan.samples as u64);
            for s in &plan.skew {
                m.bulk_skew_permille.observe((s * 1000.0).round() as u64);
            }
        }
        // Two-phase scatter: admission-check every partition (each check
        // accounting for the ones before it) before enqueuing any, so a
        // shed leaves no orphaned sub-requests behind.
        let mut extra_len = vec![0usize; q.shards.len()];
        let mut extra_keys = vec![0usize; q.shards.len()];
        let mut refused = None;
        for part in &plan.parts {
            let sq = &q.shards[part.shard];
            if let Err(r) = self.admissions[part.shard].admit(
                sq.pending.len() + extra_len[part.shard],
                sq.pending_keys + extra_keys[part.shard],
                part.keys.len(),
                sub_deadline,
            ) {
                refused = Some(BulkFailure {
                    shard: part.shard,
                    reason: BulkReason::Shed(r),
                });
                break;
            }
            extra_len[part.shard] += 1;
            extra_keys[part.shard] += part.keys.len();
        }
        if let Some(failure) = refused {
            q.bulk_failed += 1;
            if let Some(m) = self.metrics.as_deref() {
                m.bulk_failed.inc();
            }
            drop(q);
            let _ = parent_tx.send(Err(SortError::Bulk(failure)));
            return Ok(Ticket { rx: parent_rx });
        }
        let mut subs = Vec::with_capacity(nparts);
        for part in plan.parts {
            let sq = &mut q.shards[part.shard];
            sq.stats.submitted += 1;
            sq.stats.admitted += 1;
            sq.pending_keys += part.keys.len();
            if let Some(m) = self.metrics.as_deref() {
                let cm = m.class(part.shard);
                cm.submitted.inc();
                cm.admitted.inc();
                cm.set_queue(sq.pending.len() + 1, sq.pending_keys);
            }
            let (reply, rx) = mpsc::channel();
            sq.pending.push_back(Pending {
                work: PendingWork::Plain {
                    keys: part.keys,
                    reply,
                },
                dir,
                deadline: sub_deadline,
                enqueued: t0,
            });
            subs.push((part.shard, rx));
        }
        q.router_sink.set_step(nparts as u32);
        q.router_sink.span(TracePhase::Split, t0, Instant::now());
        // Register the coordinator while still holding the queue lock
        // (where `closed` is known false), so a concurrent shutdown
        // cannot drain the worker list before this one is on it.
        let shared = Arc::clone(&self.shared);
        let metrics = self.metrics.clone();
        let worker = std::thread::spawn(move || {
            bulk_coordinator(&shared, metrics.as_deref(), dir, subs, &parent_tx);
        });
        self.bulk_workers
            .lock()
            .expect("bulk worker list")
            .push(worker);
        drop(q);
        self.shared.cv.notify_all();
        Ok(Ticket { rx: parent_rx })
    }

    /// A snapshot of every shard's counters (pool counters as of each
    /// shard's most recently finished batch).
    #[must_use]
    pub fn stats(&self) -> ShardedStats {
        let q = self.shared.q.lock().expect("shard queues lock");
        ShardedStats {
            shards: q.shards.iter().map(|s| s.stats.clone()).collect(),
            unroutable: q.unroutable,
            bulk_submitted: q.bulk_submitted,
            bulk_completed: q.bulk_completed,
            bulk_failed: q.bulk_failed,
        }
    }

    /// Stop accepting requests, drain every shard, and return the final
    /// report.
    ///
    /// # Panics
    /// Panics if a worker thread itself panicked.
    #[must_use]
    pub fn shutdown(mut self) -> ShardedReport {
        let workers = std::mem::take(&mut self.workers);
        self.close();
        let shard_traces: Vec<RankTrace> = workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        // The drained queues have answered every sub-request by now, so
        // the coordinators all finish; join them before taking the final
        // counters so in-flight merges are counted.
        let bulk: Vec<_> = self
            .bulk_workers
            .lock()
            .expect("bulk worker list")
            .drain(..)
            .collect();
        for w in bulk {
            let _ = w.join();
        }
        let mut q = self.shared.q.lock().expect("shard queues lock");
        let router_sink = std::mem::replace(
            &mut q.router_sink,
            TraceSink::new(0, obs::TraceConfig::off(), Instant::now()),
        );
        ShardedReport {
            stats: ShardedStats {
                shards: q.shards.iter().map(|s| s.stats.clone()).collect(),
                unroutable: q.unroutable,
                bulk_submitted: q.bulk_submitted,
                bulk_completed: q.bulk_completed,
                bulk_failed: q.bulk_failed,
            },
            shard_traces,
            router_trace: router_sink.finish(),
        }
    }

    fn close(&self) {
        self.shared.q.lock().expect("shard queues lock").closed = true;
        self.shared.cv.notify_all();
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.close();
        for w in std::mem::take(&mut self.workers) {
            let _ = w.join();
        }
        let bulk: Vec<_> = self
            .bulk_workers
            .lock()
            .expect("bulk worker list")
            .drain(..)
            .collect();
        for w in bulk {
            let _ = w.join();
        }
    }
}

/// One shard's sub-reply channel within a bulk scatter.
type SubReplyRx = mpsc::Receiver<Result<Vec<u32>, SortError>>;

/// Reassemble one bulk request: wait for every per-shard sub-reply, then
/// k-way merge the sorted partitions into the parent's answer. The first
/// failing sub-request fails the parent with a structured
/// [`BulkFailure`] naming the shard and reason; the surviving partitions
/// are discarded (their shard stats still settle as their batches run).
fn bulk_coordinator(
    shared: &SharedShards,
    metrics: Option<&ServiceMetrics>,
    dir: Direction,
    subs: Vec<(usize, SubReplyRx)>,
    parent: &mpsc::Sender<Result<Vec<u32>, SortError>>,
) {
    let mut parts: Vec<Vec<u32>> = Vec::with_capacity(subs.len());
    let mut failure: Option<BulkFailure> = None;
    for (shard, rx) in subs {
        if failure.is_some() {
            // Parent already doomed; drain the rest so nothing dangles.
            let _ = rx.recv();
            continue;
        }
        match rx.recv() {
            Ok(Ok(keys)) => parts.push(keys),
            Ok(Err(e)) => {
                failure = Some(BulkFailure {
                    shard,
                    reason: BulkReason::from_sub_error(&e),
                });
            }
            Err(_) => {
                failure = Some(BulkFailure {
                    shard,
                    reason: BulkReason::Closed,
                });
            }
        }
    }
    let reply = match failure {
        Some(f) => {
            shared.q.lock().expect("shard queues lock").bulk_failed += 1;
            if let Some(m) = metrics {
                m.bulk_failed.inc();
            }
            Err(SortError::Bulk(f))
        }
        None => {
            let m0 = Instant::now();
            let merged = split::merge_parts(&parts, dir);
            let m1 = Instant::now();
            {
                let mut q = shared.q.lock().expect("shard queues lock");
                q.bulk_completed += 1;
                q.router_sink.span(TracePhase::Merge, m0, m1);
            }
            if let Some(m) = metrics {
                m.bulk_completed.inc();
                m.bulk_merge_us
                    .observe(u64::try_from(m1.duration_since(m0).as_micros()).unwrap_or(u64::MAX));
            }
            Ok(merged)
        }
    };
    let _ = parent.send(reply);
}

/// [`bulk_coordinator`] for record requests: collect every partition's
/// [`RecordReply`], then merge keys *and* payload rows stably — key
/// ties break toward the earlier partition, which together with
/// [`split::plan_records`]'s ties-left scatter keeps the whole bulk
/// record sort stable.
#[allow(clippy::too_many_arguments)]
fn record_bulk_coordinator<K: Copy + Ord>(
    shared: &SharedShards,
    metrics: Option<&ServiceMetrics>,
    dir: Direction,
    stride: usize,
    subs: Vec<(usize, mpsc::Receiver<Result<RecordReply, SortError>>)>,
    parent: &mpsc::Sender<Result<RecordReply, SortError>>,
    wrap: impl Fn(Vec<K>) -> RecordKeys,
    unwrap: impl Fn(RecordKeys) -> Vec<K>,
) {
    let mut parts: Vec<(Vec<K>, Vec<u8>)> = Vec::with_capacity(subs.len());
    let mut failure: Option<BulkFailure> = None;
    for (shard, rx) in subs {
        if failure.is_some() {
            let _ = rx.recv();
            continue;
        }
        match rx.recv() {
            Ok(Ok(reply)) => parts.push((unwrap(reply.keys), reply.payload)),
            Ok(Err(e)) => {
                failure = Some(BulkFailure {
                    shard,
                    reason: BulkReason::from_sub_error(&e),
                });
            }
            Err(_) => {
                failure = Some(BulkFailure {
                    shard,
                    reason: BulkReason::Closed,
                });
            }
        }
    }
    let reply = match failure {
        Some(f) => {
            shared.q.lock().expect("shard queues lock").bulk_failed += 1;
            if let Some(m) = metrics {
                m.bulk_failed.inc();
            }
            Err(SortError::Bulk(f))
        }
        None => {
            let m0 = Instant::now();
            let (keys, payload) = split::merge_record_parts(&parts, stride, dir);
            let m1 = Instant::now();
            {
                let mut q = shared.q.lock().expect("shard queues lock");
                q.bulk_completed += 1;
                q.router_sink.span(TracePhase::Merge, m0, m1);
            }
            if let Some(m) = metrics {
                m.bulk_completed.inc();
                m.bulk_merge_us
                    .observe(u64::try_from(m1.duration_since(m0).as_micros()).unwrap_or(u64::MAX));
            }
            Ok(RecordReply {
                keys: wrap(keys),
                payload,
                stride,
            })
        }
    };
    let _ = parent.send(reply);
}

/// What a worker pulled out of the queues in one pass.
enum Taken {
    /// A batch of this shard's own requests.
    Own(Vec<Pending>),
    /// A batch stolen from `victim`'s queue.
    Stolen(Vec<Pending>, usize),
    /// Closed and this shard's queue is drained: exit.
    Done,
}

/// One shard's worker: coalesce → (steal when idle) → run → scatter,
/// with the autoscaler adjusting the pool between batches.
fn shard_worker(
    cfg: &ShardedConfig,
    me: usize,
    epoch: Instant,
    shared: &SharedShards,
    metrics: Option<Arc<ServiceMetrics>>,
) -> RankTrace {
    let class = &cfg.classes[me].pool;
    let mut pool = WarmPool::new(class);
    let cm = metrics.as_deref().map(|m| m.class(me).clone());
    if let Some(m) = &cm {
        pool.set_metrics(Arc::clone(m));
    }
    let coalescer = Coalescer::new(class);
    let mut scaler = cfg.autoscale.map(|a| Autoscaler::new(class, a));
    let mut sink = TraceSink::new(me, cfg.trace, epoch);
    let mut batch_no: u32 = 0;
    // When idle with stealing enabled, wake at this tick to rescan for
    // steal opportunities even without a submit notification.
    let idle_tick = cfg.steal_after.map(|d| d.max(Duration::from_micros(200)));

    loop {
        let taken: Taken = {
            let mut q = shared.q.lock().expect("shard queues lock");
            loop {
                // Autoscale from the live queue snapshot.
                if let Some(scaler) = scaler.as_mut() {
                    let t0 = Instant::now();
                    let verdict = scaler.assess_with_drift(
                        t0.duration_since(epoch),
                        q.shards[me].pending_keys,
                        pool.machines(),
                        cm.as_ref().map_or(1.0, |m| m.drift.ratio()),
                    );
                    match verdict {
                        ScaleVerdict::Grow => {
                            pool.grow();
                            q.shards[me].stats.scale_ups += 1;
                            if let Some(m) = &cm {
                                m.scale_ups.inc();
                            }
                            sink.span(TracePhase::Scale, t0, Instant::now());
                        }
                        ScaleVerdict::Shrink => {
                            if pool.shrink() {
                                q.shards[me].stats.scale_downs += 1;
                                if let Some(m) = &cm {
                                    m.scale_downs.inc();
                                }
                                sink.span(TracePhase::Scale, t0, Instant::now());
                            }
                        }
                        ScaleVerdict::Hold => {}
                    }
                }

                if q.shards[me].pending.is_empty() {
                    if q.closed {
                        break Taken::Done;
                    }
                    // Idle: look for a busy neighbor with an aged head.
                    if let Some(after) = cfg.steal_after {
                        let now = Instant::now();
                        let heads: Vec<StealHead> = q
                            .shards
                            .iter()
                            .enumerate()
                            .filter(|(v, _)| *v != me)
                            .filter_map(|(v, sq)| {
                                sq.pending.front().map(|p| {
                                    (v, now.duration_since(p.enqueued), p.key_count(), sq.busy)
                                })
                            })
                            .collect();
                        if let Some(victim) = pick_victim(&heads, after, class.max_batch_keys) {
                            let vq = &mut q.shards[victim];
                            let batch = take_prefix(
                                &mut vq.pending,
                                &mut vq.pending_keys,
                                class.max_batch_keys,
                            );
                            if let Some(m) = metrics.as_deref() {
                                m.class(victim).set_queue(vq.pending.len(), vq.pending_keys);
                            }
                            sink.span(TracePhase::Steal, now, Instant::now());
                            break Taken::Stolen(batch, victim);
                        }
                    }
                    q = match idle_tick {
                        Some(tick) => shared.cv.wait_timeout(q, tick).expect("lock").0,
                        None => shared.cv.wait(q).expect("shard queues lock"),
                    };
                    continue;
                }

                let now = Instant::now();
                let sq = &q.shards[me];
                let oldest_age = now.duration_since(sq.pending[0].enqueued);
                let tightest_slack = sq
                    .pending
                    .iter()
                    .map(|p| p.deadline.saturating_sub(now.duration_since(p.enqueued)))
                    .min()
                    .expect("queue is non-empty");
                match coalescer.decide(sq.pending_keys, oldest_age, tightest_slack, q.closed) {
                    Verdict::Flush => {
                        let sq = &mut q.shards[me];
                        let batch = take_prefix(
                            &mut sq.pending,
                            &mut sq.pending_keys,
                            class.max_batch_keys,
                        );
                        if let Some(m) = &cm {
                            m.verdict_flush.inc();
                            m.set_queue(sq.pending.len(), sq.pending_keys);
                        }
                        break Taken::Own(batch);
                    }
                    Verdict::Wait(d) => {
                        if let Some(m) = &cm {
                            m.verdict_wait.inc();
                        }
                        q = shared.cv.wait_timeout(q, d).expect("lock").0;
                    }
                }
            }
        };

        let (batch, stolen_from) = match taken {
            Taken::Done => {
                let mut q = shared.q.lock().expect("shard queues lock");
                q.shards[me].stats.pool = pool.stats();
                return sink.finish();
            }
            Taken::Own(b) => (b, None),
            Taken::Stolen(b, v) => (b, Some(v)),
        };

        {
            let mut q = shared.q.lock().expect("shard queues lock");
            q.shards[me].busy = true;
            // The victim keeps its submitted/admitted counts; the thief
            // takes the steal and completion credit.
            if stolen_from.is_some() {
                q.shards[me].stats.steals += 1;
                q.shards[me].stats.stolen_requests += batch.len() as u64;
                if let Some(m) = &cm {
                    m.steals.inc();
                    m.stolen_requests.add(batch.len() as u64);
                }
            }
        }
        batch_no += 1;
        let outcome = process_batch(
            &mut pool,
            class.procs,
            batch,
            &mut sink,
            batch_no,
            cm.as_deref(),
        );
        let mut q = shared.q.lock().expect("shard queues lock");
        let sq = &mut q.shards[me];
        sq.busy = false;
        sq.stats.batches += 1;
        sq.stats.batched_keys += outcome.batched_keys;
        sq.stats.largest_batch = sq.stats.largest_batch.max(outcome.requests);
        sq.stats.expired += outcome.expired;
        sq.stats.completed += outcome.completed;
        sq.stats.failed += outcome.failed;
        sq.stats.pool = pool.stats();
        drop(q);
        shared.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// The deterministic engine: the same policy stack under virtual time.
// ---------------------------------------------------------------------------

/// One scheduling decision the [`ShardEngine`] made, in order. Replaying
/// the same submissions at the same virtual times yields the same log,
/// bit for bit — the work-stealing conformance tests diff two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineEvent {
    /// A request was admitted and enqueued on `shard`.
    Routed {
        /// Request id (as returned by [`ShardEngine::submit`]).
        request: u64,
        /// The shard it routed to.
        shard: usize,
    },
    /// `shard` formed and ran a batch. `stolen_from` names the victim
    /// when the batch was claimed from a neighbor's queue.
    Flushed {
        /// The shard that ran the batch.
        shard: usize,
        /// Requests in the batch (before expiry).
        requests: u64,
        /// Useful keys in the batch.
        keys: u64,
        /// The victim shard, for stolen batches.
        stolen_from: Option<usize>,
    },
    /// The autoscaler resized `shard`'s pool.
    Scaled {
        /// The shard whose pool changed.
        shard: usize,
        /// `true` for a grow, `false` for a shrink.
        grew: bool,
        /// Machines after the change.
        machines: u64,
    },
    /// A request was answered with sorted keys by `shard`.
    Completed {
        /// The finished request.
        request: u64,
        /// The shard that ran it (the thief, for stolen batches).
        shard: usize,
    },
    /// A request out-waited its deadline before its batch formed.
    Expired {
        /// The expired request.
        request: u64,
    },
    /// A request was lost to a failed batch.
    Failed {
        /// The lost request.
        request: u64,
    },
    /// An over-band request was split: one splitter-selection round
    /// scattered it into per-shard sub-requests (which then appear as
    /// [`EngineEvent::Routed`] entries of their own).
    Split {
        /// The parent request.
        request: u64,
        /// Shard of each scattered partition, in partition order.
        parts: Vec<usize>,
        /// Keys sampled by splitter selection.
        samples: u64,
    },
    /// Every partition of a bulk request completed and the k-way merge
    /// produced the parent's reply.
    Merged {
        /// The parent request.
        request: u64,
        /// Keys in the merged reply.
        keys: u64,
    },
}

/// What one engine pending sorts: bare keys or a record request.
enum EngineWork {
    Plain(Vec<u32>),
    Record {
        keys: RecordKeys,
        payload: Vec<u8>,
        stride: usize,
    },
}

struct EnginePending {
    id: u64,
    work: EngineWork,
    dir: Direction,
    deadline: Duration,
    enqueued: Duration,
    /// `(parent id, partition index)` when this pending is one scattered
    /// partition of a bulk request.
    bulk: Option<(u64, usize)>,
}

impl EnginePending {
    fn key_count(&self) -> usize {
        match &self.work {
            EngineWork::Plain(keys) => keys.len(),
            EngineWork::Record { keys, .. } => keys.len(),
        }
    }

    fn lane(&self) -> Lane {
        match &self.work {
            EngineWork::Plain(_) => Lane::Plain,
            EngineWork::Record { keys, .. } => match keys {
                RecordKeys::U32(_) => Lane::Rec32,
                RecordKeys::U64(_) => Lane::Rec64,
                RecordKeys::U128(_) => Lane::Rec128,
            },
        }
    }
}

/// One in-flight bulk request inside the engine: completed partitions
/// accumulate here until the merge (or the first failure).
struct EngineBulk {
    dir: Direction,
    total: usize,
    parts: BTreeMap<usize, Vec<u32>>,
    failed: bool,
}

struct EngineShard {
    cfg: ServiceConfig,
    pool: WarmPool,
    coalescer: Coalescer,
    scaler: Option<Autoscaler>,
    queue: VecDeque<EnginePending>,
    queue_keys: usize,
    /// Per-machine busy-until times (virtual). A machine whose entry is
    /// `<= now` is free.
    busy: Vec<Duration>,
}

impl EngineShard {
    fn machine_free(&self, now: Duration) -> Option<usize> {
        self.busy
            .iter()
            .enumerate()
            .filter(|(_, b)| **b <= now)
            .min_by_key(|(_, b)| **b)
            .map(|(i, _)| i)
    }
}

/// The sharded policy stack run synchronously under a virtual clock.
///
/// The engine uses *real* pools (real machines, real sorted replies,
/// real plan caches) but replaces every wall-clock read with a caller-
/// advanced `now`, and models machine occupancy with the cost model:
/// running a batch marks a machine busy for
/// [`crate::BatchCost::predicted_run`] of virtual time. Because every
/// decision input is deterministic, so is the [`EngineEvent`] log.
///
/// Drive it with [`ShardEngine::submit`] / [`ShardEngine::advance`] /
/// [`ShardEngine::run_until_idle`], then inspect
/// [`ShardEngine::events`] and [`ShardEngine::reply`].
pub struct ShardEngine {
    now: Duration,
    router: Router,
    admissions: Vec<Admission>,
    steal_after: Option<Duration>,
    bulk_cfg: BulkConfig,
    bands: Vec<usize>,
    shards: Vec<EngineShard>,
    next_id: u64,
    events: Vec<EngineEvent>,
    replies: BTreeMap<u64, Result<Vec<u32>, SortError>>,
    record_replies: BTreeMap<u64, Result<RecordReply, SortError>>,
    bulk: BTreeMap<u64, EngineBulk>,
}

impl std::fmt::Debug for ShardEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardEngine")
            .field("now", &self.now)
            .field("events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl ShardEngine {
    /// Build the engine for `cfg` at virtual time zero.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`ShardedConfig::validate`].
    #[must_use]
    pub fn new(cfg: &ShardedConfig) -> Self {
        cfg.validate();
        let router = Router::new(cfg);
        let admissions = cfg
            .classes
            .iter()
            .map(|c| Admission::new(&c.pool))
            .collect();
        let shards = cfg
            .classes
            .iter()
            .map(|c| {
                let pool = WarmPool::new(&c.pool);
                let busy = vec![Duration::ZERO; pool.machines()];
                EngineShard {
                    cfg: c.pool,
                    coalescer: Coalescer::new(&c.pool),
                    scaler: cfg.autoscale.map(|a| Autoscaler::new(&c.pool, a)),
                    pool,
                    queue: VecDeque::new(),
                    queue_keys: 0,
                    busy,
                }
            })
            .collect();
        ShardEngine {
            now: Duration::ZERO,
            bulk_cfg: cfg.bulk,
            bands: router.band_capacities(),
            router,
            admissions,
            steal_after: cfg.steal_after,
            shards,
            next_id: 0,
            events: Vec::new(),
            replies: BTreeMap::new(),
            record_replies: BTreeMap::new(),
            bulk: BTreeMap::new(),
        }
    }

    /// The virtual clock.
    #[must_use]
    pub fn now(&self) -> Duration {
        self.now
    }

    /// Advance the virtual clock by `dt` without making any decisions.
    pub fn advance(&mut self, dt: Duration) {
        self.now += dt;
    }

    /// Machines currently in `shard`'s pool.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn machines(&self, shard: usize) -> usize {
        self.shards[shard].pool.machines()
    }

    /// Requests waiting on `shard`'s queue.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn queued(&self, shard: usize) -> usize {
        self.shards[shard].queue.len()
    }

    /// The decision log so far.
    #[must_use]
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// The reply recorded for request `id`, if its batch has run.
    #[must_use]
    pub fn reply(&self, id: u64) -> Option<&Result<Vec<u32>, SortError>> {
        self.replies.get(&id)
    }

    /// The record reply recorded for request `id`, if its batch has run.
    #[must_use]
    pub fn record_reply(&self, id: u64) -> Option<&Result<RecordReply, SortError>> {
        self.record_replies.get(&id)
    }

    /// Route and admit a record request at the current virtual time,
    /// returning its id. In-band only — the engine twin replays record
    /// batches, not record bulk scatters.
    ///
    /// # Errors
    /// The [`Rejection`] naming the limit the request hit.
    pub fn submit_record(&mut self, request: RecordRequest) -> Result<u64, Rejection> {
        assert_eq!(
            request.payload.len(),
            request.stride * request.keys.len(),
            "payload must hold exactly stride bytes per key"
        );
        let Some(shard) = self.router.route(request.keys.len()) else {
            return Err(self.router.too_large(request.keys.len()));
        };
        let deadline = request
            .deadline
            .unwrap_or(self.shards[shard].cfg.default_deadline);
        let sq = &mut self.shards[shard];
        self.admissions[shard].admit(
            sq.queue.len(),
            sq.queue_keys,
            request.keys.len(),
            deadline,
        )?;
        let id = self.next_id;
        self.next_id += 1;
        sq.queue_keys += request.keys.len();
        sq.queue.push_back(EnginePending {
            id,
            work: EngineWork::Record {
                keys: request.keys,
                payload: request.payload,
                stride: request.stride,
            },
            dir: request.dir,
            deadline,
            enqueued: self.now,
            bulk: None,
        });
        self.events.push(EngineEvent::Routed { request: id, shard });
        Ok(id)
    }

    /// Route and admit a request at the current virtual time, returning
    /// its id.
    ///
    /// # Errors
    /// The [`Rejection`] naming the limit the request hit.
    pub fn submit(&mut self, request: SortRequest) -> Result<u64, Rejection> {
        let Some(shard) = self.router.route(request.keys.len()) else {
            if self.bulk_cfg.enabled {
                return self.submit_bulk(request);
            }
            return Err(self.router.too_large(request.keys.len()));
        };
        let deadline = request
            .deadline
            .unwrap_or(self.shards[shard].cfg.default_deadline);
        let sq = &mut self.shards[shard];
        self.admissions[shard].admit(
            sq.queue.len(),
            sq.queue_keys,
            request.keys.len(),
            deadline,
        )?;
        let id = self.next_id;
        self.next_id += 1;
        sq.queue_keys += request.keys.len();
        sq.queue.push_back(EnginePending {
            id,
            work: EngineWork::Plain(request.keys),
            dir: request.dir,
            deadline,
            enqueued: self.now,
            bulk: None,
        });
        self.events.push(EngineEvent::Routed { request: id, shard });
        Ok(id)
    }

    /// The engine's bulk path: the identical pure split plan the
    /// threaded service computes, scattered at the current virtual time.
    /// A partition shed at admission fails the parent immediately (its
    /// reply is [`SortError::Bulk`]); the parent id is returned either
    /// way, mirroring the threaded ticket semantics.
    fn submit_bulk(&mut self, request: SortRequest) -> Result<u64, Rejection> {
        let plan = split::plan(&request.keys, &self.bands, &self.bulk_cfg);
        let parent_deadline = request.deadline.unwrap_or_else(|| {
            self.shards
                .last()
                .expect("at least one shard")
                .cfg
                .default_deadline
        });
        let sub_deadline = parent_deadline.saturating_sub(self.bulk_cfg.merge_budget);
        let parent = self.next_id;
        self.next_id += 1;
        self.events.push(EngineEvent::Split {
            request: parent,
            parts: plan.parts.iter().map(|p| p.shard).collect(),
            samples: plan.samples as u64,
        });
        // Two-phase scatter, as in the threaded service: check every
        // partition before enqueuing any.
        let mut extra_len = vec![0usize; self.shards.len()];
        let mut extra_keys = vec![0usize; self.shards.len()];
        let mut refused = None;
        for part in &plan.parts {
            let s = &self.shards[part.shard];
            if let Err(r) = self.admissions[part.shard].admit(
                s.queue.len() + extra_len[part.shard],
                s.queue_keys + extra_keys[part.shard],
                part.keys.len(),
                sub_deadline,
            ) {
                refused = Some(BulkFailure {
                    shard: part.shard,
                    reason: BulkReason::Shed(r),
                });
                break;
            }
            extra_len[part.shard] += 1;
            extra_keys[part.shard] += part.keys.len();
        }
        if let Some(failure) = refused {
            self.events.push(EngineEvent::Failed { request: parent });
            self.replies.insert(parent, Err(SortError::Bulk(failure)));
            return Ok(parent);
        }
        self.bulk.insert(
            parent,
            EngineBulk {
                dir: request.dir,
                total: plan.parts.len(),
                parts: BTreeMap::new(),
                failed: false,
            },
        );
        for (idx, part) in plan.parts.into_iter().enumerate() {
            let id = self.next_id;
            self.next_id += 1;
            let sq = &mut self.shards[part.shard];
            sq.queue_keys += part.keys.len();
            sq.queue.push_back(EnginePending {
                id,
                work: EngineWork::Plain(part.keys),
                dir: request.dir,
                deadline: sub_deadline,
                enqueued: self.now,
                bulk: Some((parent, idx)),
            });
            self.events.push(EngineEvent::Routed {
                request: id,
                shard: part.shard,
            });
        }
        Ok(parent)
    }

    /// Record one completed bulk partition; when the last one lands, run
    /// the k-way merge and answer the parent.
    fn bulk_part_done(&mut self, parent: u64, idx: usize, keys: Vec<u32>) {
        let Some(b) = self.bulk.get_mut(&parent) else {
            return;
        };
        if b.failed {
            return;
        }
        b.parts.insert(idx, keys);
        if b.parts.len() == b.total {
            let b = self.bulk.remove(&parent).expect("entry present");
            let parts: Vec<Vec<u32>> = b.parts.into_values().collect();
            let merged = split::merge_parts(&parts, b.dir);
            self.events.push(EngineEvent::Merged {
                request: parent,
                keys: merged.len() as u64,
            });
            self.replies.insert(parent, Ok(merged));
        }
    }

    /// Fail a bulk parent on its first sinking partition; later
    /// partitions of the same parent are discarded as they complete.
    fn bulk_part_failed(&mut self, parent: u64, shard: usize, reason: BulkReason) {
        let Some(b) = self.bulk.get_mut(&parent) else {
            return;
        };
        if b.failed {
            return;
        }
        b.failed = true;
        b.parts.clear();
        self.events.push(EngineEvent::Failed { request: parent });
        self.replies
            .insert(parent, Err(SortError::Bulk(BulkFailure { shard, reason })));
    }

    /// One decision pass at the current virtual time: autoscale every
    /// shard, flush every shard whose coalescer says so (while machines
    /// are free), then let idle shards steal from busy neighbors.
    /// Returns whether anything happened.
    pub fn tick(&mut self) -> bool {
        let mut progressed = false;
        for i in 0..self.shards.len() {
            progressed |= self.autoscale(i);
        }
        for i in 0..self.shards.len() {
            while self.try_flush(i) {
                progressed = true;
            }
        }
        if self.steal_after.is_some() {
            for thief in 0..self.shards.len() {
                while self.try_steal(thief) {
                    progressed = true;
                }
            }
        }
        progressed
    }

    /// Run ticks, advancing virtual time through waits, until every
    /// queue is empty and every machine is free.
    pub fn run_until_idle(&mut self) {
        loop {
            if self.tick() {
                continue;
            }
            let Some(next) = self.next_event_time() else {
                break;
            };
            debug_assert!(next > self.now, "virtual time must advance");
            self.now = next;
        }
    }

    /// The earliest future virtual time at which a new decision could
    /// fire: a machine freeing up, a coalescer wait expiring, or a
    /// queued head crossing the steal threshold. `None` when fully idle.
    fn next_event_time(&self) -> Option<Duration> {
        let mut next: Option<Duration> = None;
        let mut consider = |t: Duration| {
            if t > self.now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for s in &self.shards {
            for b in &s.busy {
                consider(*b);
            }
            if let Some(head) = s.queue.front() {
                // The coalescer's wait is bounded by max_wait from the
                // head's enqueue; flushing is certain by then.
                consider(head.enqueued + s.cfg.max_wait);
                if let Some(after) = self.steal_after {
                    consider(head.enqueued + after);
                }
            }
        }
        next
    }

    fn autoscale(&mut self, i: usize) -> bool {
        let now = self.now;
        let s = &mut self.shards[i];
        let Some(scaler) = s.scaler.as_mut() else {
            return false;
        };
        match scaler.assess(now, s.queue_keys, s.pool.machines()) {
            ScaleVerdict::Grow => {
                s.pool.grow();
                s.busy.push(now);
                self.events.push(EngineEvent::Scaled {
                    shard: i,
                    grew: true,
                    machines: s.pool.machines() as u64,
                });
                true
            }
            ScaleVerdict::Shrink => {
                if s.pool.shrink() {
                    // Retire the freest machine slot.
                    if let Some(idx) = s
                        .busy
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, b)| **b)
                        .map(|(idx, _)| idx)
                    {
                        s.busy.remove(idx);
                    }
                    self.events.push(EngineEvent::Scaled {
                        shard: i,
                        grew: false,
                        machines: s.pool.machines() as u64,
                    });
                    true
                } else {
                    false
                }
            }
            ScaleVerdict::Hold => false,
        }
    }

    fn try_flush(&mut self, i: usize) -> bool {
        let now = self.now;
        let s = &self.shards[i];
        if s.queue.is_empty() || s.machine_free(now).is_none() {
            return false;
        }
        let oldest_age = now.saturating_sub(s.queue[0].enqueued);
        let tightest_slack = s
            .queue
            .iter()
            .map(|p| p.deadline.saturating_sub(now.saturating_sub(p.enqueued)))
            .min()
            .expect("queue is non-empty");
        if s.coalescer
            .decide(s.queue_keys, oldest_age, tightest_slack, false)
            != Verdict::Flush
        {
            return false;
        }
        let max_batch_keys = self.shards[i].cfg.max_batch_keys;
        let batch = Self::take_engine_prefix(&mut self.shards[i], max_batch_keys);
        self.run_engine_batch(i, batch, None);
        true
    }

    fn try_steal(&mut self, thief: usize) -> bool {
        let Some(after) = self.steal_after else {
            return false;
        };
        let now = self.now;
        let t = &self.shards[thief];
        if !t.queue.is_empty() || t.machine_free(now).is_none() {
            return false;
        }
        let capacity = t.cfg.max_batch_keys;
        let heads: Vec<StealHead> = self
            .shards
            .iter()
            .enumerate()
            .filter(|(v, _)| *v != thief)
            .filter_map(|(v, s)| {
                s.queue.front().map(|p| {
                    // A victim is "busy" when no machine of its own could
                    // pick the head up right now.
                    (
                        v,
                        now.saturating_sub(p.enqueued),
                        p.key_count(),
                        s.machine_free(now).is_none(),
                    )
                })
            })
            .collect();
        let Some(victim) = pick_victim(&heads, after, capacity) else {
            return false;
        };
        let batch = Self::take_engine_prefix(&mut self.shards[victim], capacity);
        self.run_engine_batch(thief, batch, Some(victim));
        true
    }

    /// [`crate::server::take_prefix`] over engine pendings — including
    /// its single-lane rule: the prefix stops at the first request in a
    /// different coalescing lane than the head.
    fn take_engine_prefix(s: &mut EngineShard, max_batch_keys: usize) -> Vec<EnginePending> {
        let mut batch = Vec::new();
        let mut keys = 0usize;
        let mut lane = None;
        while let Some(front) = s.queue.front() {
            let k = front.key_count();
            if !batch.is_empty() && keys + k > max_batch_keys {
                break;
            }
            if *lane.get_or_insert(front.lane()) != front.lane() {
                break;
            }
            keys += k;
            s.queue_keys -= k;
            batch.push(s.queue.pop_front().expect("front exists"));
        }
        batch
    }

    fn run_engine_batch(
        &mut self,
        runner: usize,
        batch: Vec<EnginePending>,
        stolen_from: Option<usize>,
    ) {
        let now = self.now;
        let origin = stolen_from.unwrap_or(runner);
        let requests = batch.len() as u64;
        let mut live: Vec<EnginePending> = Vec::with_capacity(batch.len());
        for p in batch {
            let waited = now.saturating_sub(p.enqueued);
            if waited > p.deadline {
                let err = SortError::Expired {
                    waited,
                    deadline: p.deadline,
                };
                match p.work {
                    EngineWork::Plain(_) => {
                        self.replies.insert(p.id, Err(err));
                    }
                    EngineWork::Record { .. } => {
                        self.record_replies.insert(p.id, Err(err));
                    }
                }
                self.events.push(EngineEvent::Expired { request: p.id });
                if let Some((parent, _)) = p.bulk {
                    self.bulk_part_failed(
                        parent,
                        origin,
                        BulkReason::Expired {
                            waited,
                            deadline: p.deadline,
                        },
                    );
                }
                continue;
            }
            live.push(p);
        }
        let keys = live.iter().map(EnginePending::key_count).sum::<usize>() as u64;
        self.events.push(EngineEvent::Flushed {
            shard: runner,
            requests,
            keys,
            stolen_from,
        });
        if live.is_empty() {
            return;
        }
        let s = &mut self.shards[runner];
        let slot = s
            .machine_free(now)
            .expect("caller checked a machine is free");
        s.busy[slot] = now + s.coalescer.cost().predicted_run(keys as usize);
        match live[0].lane() {
            Lane::Plain => self.run_engine_plain(runner, &live),
            Lane::Rec32 => self.run_engine_records::<u128>(
                runner,
                &live,
                |keys| match keys {
                    RecordKeys::U32(k) => k.iter().copied().map(u64::from).collect(),
                    _ => unreachable!("single-lane batch"),
                },
                |keys| RecordKeys::U32(keys.into_iter().map(|k| k as u32).collect()),
                WarmPool::run_record128_batch,
            ),
            Lane::Rec64 => self.run_engine_records::<u128>(
                runner,
                &live,
                |keys| match keys {
                    RecordKeys::U64(k) => k.clone(),
                    _ => unreachable!("single-lane batch"),
                },
                RecordKeys::U64,
                WarmPool::run_record128_batch,
            ),
            Lane::Rec128 => self.run_engine_records::<W192>(
                runner,
                &live,
                |keys| match keys {
                    RecordKeys::U128(k) => k.clone(),
                    _ => unreachable!("single-lane batch"),
                },
                RecordKeys::U128,
                WarmPool::run_record192_batch,
            ),
        }
    }

    /// The engine's plain batch body: [`TaggedBatch`] encode, run, split.
    fn run_engine_plain(&mut self, runner: usize, live: &[EnginePending]) {
        let mut tagged = TaggedBatch::new();
        for p in live {
            let EngineWork::Plain(keys) = &p.work else {
                unreachable!("single-lane batch");
            };
            tagged.push(keys, p.dir);
        }
        let s = &mut self.shards[runner];
        let (words, per_rank) = tagged.padded_words(s.cfg.procs);
        match s.pool.run_batch(words, per_rank) {
            Ok(sorted) => {
                for (p, reply) in live.iter().zip(tagged.split(&sorted)) {
                    self.replies.insert(p.id, Ok(reply.clone()));
                    self.events.push(EngineEvent::Completed {
                        request: p.id,
                        shard: runner,
                    });
                    if let Some((parent, idx)) = p.bulk {
                        self.bulk_part_done(parent, idx, reply);
                    }
                }
            }
            Err(failure) => {
                let msg = failure.to_string();
                for p in live {
                    self.replies
                        .insert(p.id, Err(SortError::MachineFailed(msg.clone())));
                    self.events.push(EngineEvent::Failed { request: p.id });
                    if let Some((parent, _)) = p.bulk {
                        self.bulk_part_failed(parent, runner, BulkReason::Failed(msg.clone()));
                    }
                }
            }
        }
    }

    /// The engine's record batch body, generic over the machine word —
    /// the deterministic twin of `server::run_record_batch`. Record
    /// pendings are never bulk partitions (the engine's record path is
    /// in-band only), so there is no bulk bookkeeping here.
    fn run_engine_records<W: RecordWord>(
        &mut self,
        runner: usize,
        live: &[EnginePending],
        widen: impl Fn(&RecordKeys) -> Vec<W::Key>,
        narrow: impl Fn(Vec<W::Key>) -> RecordKeys,
        run: impl FnOnce(&mut WarmPool, Vec<W>, usize) -> Result<Vec<W>, spmd::MachineFailure>,
    ) {
        let mut rec = RecordBatch::<W>::new();
        for p in live {
            let EngineWork::Record { keys, .. } = &p.work else {
                unreachable!("single-lane batch");
            };
            rec.push(&widen(keys), p.dir);
        }
        let s = &mut self.shards[runner];
        let (words, per_rank) = rec.padded_words(s.cfg.procs);
        match run(&mut s.pool, words, per_rank) {
            Ok(sorted) => {
                for (p, seg) in live.iter().zip(rec.split(&sorted)) {
                    let EngineWork::Record {
                        payload, stride, ..
                    } = &p.work
                    else {
                        unreachable!("single-lane batch");
                    };
                    self.record_replies.insert(
                        p.id,
                        Ok(RecordReply {
                            keys: narrow(seg.keys),
                            payload: gather_rows(payload, *stride, &seg.perm),
                            stride: *stride,
                        }),
                    );
                    self.events.push(EngineEvent::Completed {
                        request: p.id,
                        shard: runner,
                    });
                }
            }
            Err(failure) => {
                let msg = failure.to_string();
                for p in live {
                    self.record_replies
                        .insert(p.id, Err(SortError::MachineFailed(msg.clone())));
                    self.events.push(EngineEvent::Failed { request: p.id });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_victim_wants_the_oldest_busy_compatible_head() {
        let ms = Duration::from_millis;
        let heads = vec![
            (0, ms(5), 10, true),
            (1, ms(9), 10, false), // oldest but not busy
            (2, ms(7), 10, true),
            (3, ms(7), 999_999, true), // too big for the thief
        ];
        assert_eq!(pick_victim(&heads, ms(1), 100), Some(2));
        assert_eq!(pick_victim(&heads, ms(8), 100), None, "nobody aged enough");
        // Ties go to the lowest shard index.
        let tied = vec![(4, ms(7), 10, true), (1, ms(7), 10, true)];
        assert_eq!(pick_victim(&tied, ms(1), 100), Some(1));
        assert_eq!(pick_victim(&[], ms(1), 100), None);
    }
}
