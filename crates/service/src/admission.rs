//! Admission control: bounded queues and structured load shedding.
//!
//! A request is either admitted — it *will* get a reply — or rejected at
//! the door with a [`Rejection`] naming the limit it hit, so clients can
//! tell "retry later" (queue pressure) from "never send this" (too
//! large) from "lower your deadline expectations" (unmeetable). Shedding
//! at submit time is what keeps the dispatcher's work bounded: past the
//! door, only deadline expiry can still drop a request.

use crate::coalescer::BatchCost;
use crate::config::ServiceConfig;
use std::time::Duration;

/// Why a request was refused at submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The service is shutting down.
    Closed,
    /// The request alone exceeds the per-request key limit.
    TooLarge {
        /// Keys in the refused request.
        keys: usize,
        /// The configured per-request limit.
        limit: usize,
    },
    /// The queue already holds the maximum number of requests.
    QueueFull {
        /// Requests currently queued.
        queued: usize,
        /// The configured request limit.
        limit: usize,
    },
    /// Admitting the request would exceed the queued-key bound.
    QueueOverflow {
        /// Keys currently queued plus the request's.
        would_hold: usize,
        /// The configured key limit.
        limit: usize,
    },
    /// The backlog's predicted drain time already exceeds the request's
    /// deadline — it would expire in the queue, so shed it now.
    DeadlineUnmeetable {
        /// Predicted (model) time to drain the backlog including this
        /// request.
        predicted_wait: Duration,
        /// The request's deadline.
        deadline: Duration,
    },
}

impl Rejection {
    /// Stable label naming the rejection class — the `reason` label value
    /// on the `bitonic_requests_shed_total` metric.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Rejection::Closed => "closed",
            Rejection::TooLarge { .. } => "too_large",
            Rejection::QueueFull { .. } => "queue_full",
            Rejection::QueueOverflow { .. } => "queue_overflow",
            Rejection::DeadlineUnmeetable { .. } => "deadline_unmeetable",
        }
    }
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Closed => write!(f, "service is shutting down"),
            Rejection::TooLarge { keys, limit } => {
                write!(f, "request of {keys} keys exceeds the {limit}-key limit")
            }
            Rejection::QueueFull { queued, limit } => {
                write!(f, "queue holds {queued} requests (limit {limit})")
            }
            Rejection::QueueOverflow { would_hold, limit } => {
                write!(f, "queue would hold {would_hold} keys (limit {limit})")
            }
            Rejection::DeadlineUnmeetable {
                predicted_wait,
                deadline,
            } => write!(
                f,
                "predicted wait {predicted_wait:?} exceeds deadline {deadline:?}"
            ),
        }
    }
}

/// The submit-side gatekeeper. Pure: a function of the queue snapshot.
#[derive(Debug, Clone)]
pub struct Admission {
    max_request_keys: usize,
    max_queue_requests: usize,
    max_queue_keys: usize,
    cost: BatchCost,
}

impl Admission {
    /// Gatekeeper for `cfg`.
    #[must_use]
    pub fn new(cfg: &ServiceConfig) -> Self {
        Admission {
            max_request_keys: cfg.max_request_keys,
            max_queue_requests: cfg.max_queue_requests,
            max_queue_keys: cfg.max_queue_keys,
            cost: BatchCost::new(cfg.procs),
        }
    }

    /// Admit or shed a `request_keys`-key request with `deadline` against
    /// a queue currently holding `queued` requests / `queued_keys` keys.
    ///
    /// # Errors
    /// The [`Rejection`] describing the first limit the request hit.
    pub fn admit(
        &self,
        queued: usize,
        queued_keys: usize,
        request_keys: usize,
        deadline: Duration,
    ) -> Result<(), Rejection> {
        if request_keys > self.max_request_keys {
            return Err(Rejection::TooLarge {
                keys: request_keys,
                limit: self.max_request_keys,
            });
        }
        if queued >= self.max_queue_requests {
            return Err(Rejection::QueueFull {
                queued,
                limit: self.max_queue_requests,
            });
        }
        let would_hold = queued_keys + request_keys;
        if would_hold > self.max_queue_keys {
            return Err(Rejection::QueueOverflow {
                would_hold,
                limit: self.max_queue_keys,
            });
        }
        let predicted_wait = self.cost.predicted_run(would_hold);
        if predicted_wait > deadline {
            return Err(Rejection::DeadlineUnmeetable {
                predicted_wait,
                deadline,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admission() -> Admission {
        let mut cfg = ServiceConfig::new(4);
        cfg.max_request_keys = 100;
        cfg.max_queue_requests = 4;
        cfg.max_queue_keys = 300;
        Admission::new(&cfg)
    }

    const DEADLINE: Duration = Duration::from_secs(10);

    #[test]
    fn within_limits_admits() {
        assert_eq!(admission().admit(0, 0, 50, DEADLINE), Ok(()));
        assert_eq!(admission().admit(3, 250, 50, DEADLINE), Ok(()));
    }

    #[test]
    fn oversized_requests_are_shed_with_the_limit() {
        match admission().admit(0, 0, 101, DEADLINE) {
            Err(Rejection::TooLarge {
                keys: 101,
                limit: 100,
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn full_queues_shed() {
        assert!(matches!(
            admission().admit(4, 200, 10, DEADLINE),
            Err(Rejection::QueueFull {
                queued: 4,
                limit: 4
            })
        ));
    }

    #[test]
    fn key_overflow_sheds() {
        assert!(matches!(
            admission().admit(2, 260, 50, DEADLINE),
            Err(Rejection::QueueOverflow {
                would_hold: 310,
                limit: 300
            })
        ));
    }

    #[test]
    fn unmeetable_deadlines_are_shed_up_front() {
        // Any positive backlog has a positive predicted drain time, so a
        // zero deadline can never be met.
        match admission().admit(1, 64, 64, Duration::ZERO) {
            Err(Rejection::DeadlineUnmeetable { predicted_wait, .. }) => {
                assert!(predicted_wait > Duration::ZERO);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejections_render_structured_messages() {
        let msg = Rejection::QueueFull {
            queued: 9,
            limit: 8,
        }
        .to_string();
        assert!(msg.contains('9') && msg.contains('8'));
    }
}
