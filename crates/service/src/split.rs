//! Cross-shard bulk sorts: splitter selection, scatter planning, and
//! the reply-side k-way merge.
//!
//! A request larger than every band cannot ride any single shard's
//! pool, but the shard layer as a whole has the capacity — the sum of
//! the bands. This module turns one over-band request into a *scatter
//! plan*: a one-round sample of the keys picks `s − 1` splitters, the
//! splitters cut the key range into `s` contiguous partitions (one per
//! shard, sized to the shard's band by capacity-weighted quantiles),
//! and each partition becomes an in-band sub-request on its shard.
//! Sorted partitions come back range-disjoint, so the reply-side merge
//! is a k-way run merge.
//!
//! **Sampling math.** Following *Optimal Round and Sample-Size
//! Complexity for Partitioning in Parallel Sorting* (arXiv 2204.04599),
//! a single sampling round with `k = ceil(2 ln s / eps²)` samples per
//! splitter bounds every partition at `(1 + eps)` times its fair share
//! with high probability on random input. We read `eps` off the
//! configured [`BulkConfig::skew_bound`] (`skew_bound = 1 + eps`) and
//! clamp the factor to `[64, 512]` — the asymptotic formula under-
//! samples at small shard counts (its constants assume `s` in the
//! hundreds), and below ~64 samples per splitter the quantile
//! estimator is noise; above 512 sampling starts costing more than it
//! saves at our sizes.
//!
//! **Correctness is not conditional on balance.** The skew bound is a
//! *balance* property of random input; correctness never depends on it.
//! An adversarial input (all keys equal, say) lands every key in one
//! partition — the plan then chunks that partition into consecutive
//! band-sized sub-requests on its shard, and the k-way merge reorders
//! whatever comes back. Every plan sorts correctly; a good plan also
//! sorts in parallel.
//!
//! **Determinism.** Sampling uses a stateless xorshift stream seeded
//! from [`BulkConfig::seed`]: the plan is a pure function of
//! `(keys, bands, config)`, never of wall-clock or thread timing. The
//! [`crate::ShardEngine`] twin leans on this to replay a scatter/merge
//! schedule bit-for-bit.

use crate::admission::Rejection;
use crate::config::BulkConfig;
use bitonic_network::Direction;
use local_sorts::merge::Run;
use local_sorts::pway_merge::pway_merge_into;
use std::time::Duration;

/// Why a bulk request failed: the shard that sank it and what happened
/// there. Carried by [`crate::SortError::Bulk`]; any sub-request
/// shed, expired, or failed fails the whole parent (surviving
/// partitions are discarded — a partial bulk sort is not a sort).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BulkFailure {
    /// The shard whose sub-request sank the parent.
    pub shard: usize,
    /// What happened to that sub-request.
    pub reason: BulkReason,
}

/// The per-shard outcome inside a [`BulkFailure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BulkReason {
    /// The sub-request was shed at the shard's admission gate.
    Shed(Rejection),
    /// The sub-request expired in the shard's queue.
    Expired {
        /// How long the sub-request waited.
        waited: Duration,
        /// The (merge-budget-reduced) deadline it carried.
        deadline: Duration,
    },
    /// The shard's batch failed; the machine's failure message.
    Failed(String),
    /// The service shut down before the sub-request was answered.
    Closed,
}

impl BulkReason {
    /// The reason a sub-request's post-admission error maps to. A
    /// nested `Bulk` error is impossible — sub-requests are in-band by
    /// construction — so it folds to its own failure message.
    #[must_use]
    pub fn from_sub_error(err: &crate::server::SortError) -> Self {
        use crate::server::SortError;
        match err {
            SortError::Expired { waited, deadline } => BulkReason::Expired {
                waited: *waited,
                deadline: *deadline,
            },
            SortError::MachineFailed(msg) => BulkReason::Failed(msg.clone()),
            SortError::ServiceClosed => BulkReason::Closed,
            SortError::Bulk(f) => BulkReason::Failed(f.to_string()),
        }
    }

    /// Stable label naming the reason class.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BulkReason::Shed(_) => "shed",
            BulkReason::Expired { .. } => "expired",
            BulkReason::Failed(_) => "failed",
            BulkReason::Closed => "closed",
        }
    }
}

impl std::fmt::Display for BulkFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bulk partition on shard {} ", self.shard)?;
        match &self.reason {
            BulkReason::Shed(r) => write!(f, "was shed: {r}"),
            BulkReason::Expired { waited, deadline } => {
                write!(f, "expired after {waited:?} (deadline {deadline:?})")
            }
            BulkReason::Failed(msg) => write!(f, "failed: {msg}"),
            BulkReason::Closed => write!(f, "was dropped by shutdown"),
        }
    }
}

/// One in-band sub-request of a scatter plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitPart {
    /// The shard this partition (chunk) is bound for.
    pub shard: usize,
    /// The partition's keys, in input order (the shard sorts them).
    pub keys: Vec<u32>,
}

/// A complete, deterministic scatter plan for one bulk request.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPlan {
    /// The `s − 1` chosen splitters, non-decreasing. A key `k` belongs
    /// to the first shard `i` with `k <= splitters[i]` (the last shard
    /// takes everything above the final splitter).
    pub splitters: Vec<u32>,
    /// The sub-requests, grouped by shard in shard order. A partition
    /// larger than its shard's band appears as several consecutive
    /// chunks on the same shard; empty partitions are omitted.
    pub parts: Vec<SplitPart>,
    /// Keys sampled by the splitter-selection round.
    pub samples: usize,
    /// Per-shard skew: partition size over the capacity-weighted fair
    /// share (1.0 = perfectly proportional). Indexed by shard.
    pub skew: Vec<f64>,
}

impl SplitPlan {
    /// The largest per-shard skew (the figure the bound constrains).
    #[must_use]
    pub fn max_skew(&self) -> f64 {
        self.skew.iter().copied().fold(0.0, f64::max)
    }

    /// The mean per-shard skew.
    #[must_use]
    pub fn mean_skew(&self) -> f64 {
        if self.skew.is_empty() {
            return 0.0;
        }
        self.skew.iter().sum::<f64>() / self.skew.len() as f64
    }
}

/// Samples per splitter for an `s`-shard topology targeting
/// `skew_bound = 1 + eps`: `ceil(2 ln s / eps²)`, clamped to
/// `[64, 512]`. See the module docs for the derivation's source and
/// the rationale for the clamp.
#[must_use]
pub fn oversample_factor(shards: usize, skew_bound: f64) -> usize {
    let eps = (skew_bound - 1.0).max(1e-3);
    let s = shards.max(2) as f64;
    let k = (2.0 * s.ln() / (eps * eps)).ceil();
    (k as usize).clamp(64, 512)
}

/// The xorshift64 step every deterministic corner of this repo uses.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Build the scatter plan for `keys` over shards whose band capacities
/// are `bands` (in shard order, strictly increasing — exactly
/// [`crate::Router::band_capacities`]). Pure: the same
/// `(keys, bands, cfg)` always yields the same plan.
///
/// # Panics
/// Panics if `bands` is empty or `keys` is empty — the caller only
/// splits requests that exceeded a non-empty band list.
#[must_use]
pub fn plan(keys: &[u32], bands: &[usize], cfg: &BulkConfig) -> SplitPlan {
    assert!(!bands.is_empty(), "cannot split across zero shards");
    assert!(!keys.is_empty(), "cannot split an empty request");
    let shards = bands.len();
    let n = keys.len();
    let capacity: usize = bands.iter().sum();

    // One sampling round, oversampled per splitter.
    let per_splitter = oversample_factor(shards, cfg.skew_bound);
    let want = (per_splitter * shards).min(n);
    let mut state = cfg.seed | 1;
    let mut sample: Vec<u32> = (0..want)
        .map(|_| keys[(xorshift(&mut state) % n as u64) as usize])
        .collect();
    sample.sort_unstable();

    // Capacity-weighted quantiles: shard i's expected share of the
    // request is band_i / sum(bands), so its splitter sits at the
    // cumulative-weight quantile of the sorted sample. With equal
    // bands this degenerates to the classic equal-quantile pick.
    let mut splitters = Vec::with_capacity(shards - 1);
    let mut cum = 0usize;
    for band in &bands[..shards - 1] {
        cum += band;
        let q = (cum as f64 / capacity as f64 * sample.len() as f64).round() as usize;
        splitters.push(sample[q.min(sample.len() - 1)]);
    }

    // Scatter: each key to the first shard whose splitter admits it.
    // Ties on a splitter all land left of it, which can only shift
    // skew, never order — the merge reassembles any distribution.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for &k in keys {
        let shard = splitters.partition_point(|&s| s < k);
        buckets[shard].push(k);
    }

    let skew = buckets
        .iter()
        .zip(bands)
        .map(|(b, band)| {
            let share = n as f64 * (*band as f64 / capacity as f64);
            b.len() as f64 / share
        })
        .collect();

    // Chunk any partition past its band into consecutive band-sized
    // sub-requests on the same shard — the degenerate-input safety net
    // that keeps every sub-request admissible.
    let mut parts = Vec::with_capacity(shards);
    for (shard, bucket) in buckets.into_iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        for chunk in bucket.chunks(bands[shard]) {
            parts.push(SplitPart {
                shard,
                keys: chunk.to_vec(),
            });
        }
    }

    SplitPlan {
        splitters,
        parts,
        samples: want,
        skew,
    }
}

/// One in-band sub-request of a record scatter plan: the partition's
/// keys plus each key's original row index, so the caller can gather
/// the matching payload rows for the sub-request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordPart<K> {
    /// The shard this partition (chunk) is bound for.
    pub shard: usize,
    /// The partition's keys, in input order.
    pub keys: Vec<K>,
    /// `rows[i]` is the original request row of `keys[i]`.
    pub rows: Vec<u32>,
}

/// A deterministic scatter plan for one record bulk request — the
/// record analogue of [`SplitPlan`], generic over the key width.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordSplitPlan<K> {
    /// The sub-requests, grouped by shard in shard order (chunked and
    /// filtered exactly like [`SplitPlan::parts`]).
    pub parts: Vec<RecordPart<K>>,
    /// Keys sampled by the splitter-selection round.
    pub samples: usize,
    /// Per-shard skew, indexed by shard (see [`SplitPlan::skew`]).
    pub skew: Vec<f64>,
}

/// [`plan`] generalized to record keys of any width: the same sampling
/// round, capacity-weighted splitters, ties-left scatter, and band
/// chunking, additionally carrying each key's original row index so
/// payload rows can follow their keys. Scatter order preserves input
/// order within a bucket, and equal keys always land in one bucket
/// (ties go left) — chunks of one bucket are consecutive input slices
/// — so a merge that breaks key ties by part order is stable overall.
///
/// # Panics
/// Panics if `bands` is empty or `keys` is empty.
#[must_use]
pub fn plan_records<K: Copy + Ord>(
    keys: &[K],
    bands: &[usize],
    cfg: &BulkConfig,
) -> RecordSplitPlan<K> {
    assert!(!bands.is_empty(), "cannot split across zero shards");
    assert!(!keys.is_empty(), "cannot split an empty request");
    let shards = bands.len();
    let n = keys.len();
    let capacity: usize = bands.iter().sum();

    let per_splitter = oversample_factor(shards, cfg.skew_bound);
    let want = (per_splitter * shards).min(n);
    let mut state = cfg.seed | 1;
    let mut sample: Vec<K> = (0..want)
        .map(|_| keys[(xorshift(&mut state) % n as u64) as usize])
        .collect();
    sample.sort_unstable();

    let mut splitters = Vec::with_capacity(shards - 1);
    let mut cum = 0usize;
    for band in &bands[..shards - 1] {
        cum += band;
        let q = (cum as f64 / capacity as f64 * sample.len() as f64).round() as usize;
        splitters.push(sample[q.min(sample.len() - 1)]);
    }

    let mut buckets: Vec<(Vec<K>, Vec<u32>)> = vec![(Vec::new(), Vec::new()); shards];
    for (row, &k) in keys.iter().enumerate() {
        let shard = splitters.partition_point(|&s| s < k);
        buckets[shard].0.push(k);
        buckets[shard].1.push(row as u32);
    }

    let skew = buckets
        .iter()
        .zip(bands)
        .map(|((b, _), band)| {
            let share = n as f64 * (*band as f64 / capacity as f64);
            b.len() as f64 / share
        })
        .collect();

    let mut parts = Vec::with_capacity(shards);
    for (shard, (bucket, rows)) in buckets.into_iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        for (chunk, row_chunk) in bucket.chunks(bands[shard]).zip(rows.chunks(bands[shard])) {
            parts.push(RecordPart {
                shard,
                keys: chunk.to_vec(),
                rows: row_chunk.to_vec(),
            });
        }
    }

    RecordSplitPlan {
        parts,
        samples: want,
        skew,
    }
}

/// Reassemble sorted record partitions — `(keys, payload rows)` pairs,
/// each already sorted in `dir` with payload in key order — into one
/// merged reply. Key ties break toward the earlier part, which makes
/// the whole bulk sort stable given [`plan_records`]'s scatter (equal
/// keys share a bucket and its chunks are input-ordered).
#[must_use]
pub fn merge_record_parts<K: Copy + Ord>(
    parts: &[(Vec<K>, Vec<u8>)],
    stride: usize,
    dir: Direction,
) -> (Vec<K>, Vec<u8>) {
    let total: usize = parts.iter().map(|(k, _)| k.len()).sum();
    let mut keys = Vec::with_capacity(total);
    let mut payload = Vec::with_capacity(total * stride);
    let mut idx = vec![0usize; parts.len()];
    for _ in 0..total {
        let mut best: Option<usize> = None;
        for (p, (ks, _)) in parts.iter().enumerate() {
            if idx[p] >= ks.len() {
                continue;
            }
            best = match best {
                None => Some(p),
                Some(b) => {
                    let better = match dir {
                        Direction::Ascending => ks[idx[p]] < parts[b].0[idx[b]],
                        Direction::Descending => ks[idx[p]] > parts[b].0[idx[b]],
                    };
                    if better {
                        Some(p)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let p = best.expect("total keys remain");
        let (ks, rows) = &parts[p];
        keys.push(ks[idx[p]]);
        payload.extend_from_slice(&rows[idx[p] * stride..(idx[p] + 1) * stride]);
        idx[p] += 1;
    }
    (keys, payload)
}

/// Reassemble sorted partitions into one ordered reply: a k-way merge
/// of runs each sorted in `dir`, producing `dir` order. Correct for
/// any partition quality — overlapping ranges (chunked partitions)
/// merge exactly like disjoint ones, just less cheaply.
#[must_use]
pub fn merge_parts(parts: &[Vec<u32>], dir: Direction) -> Vec<u32> {
    let runs: Vec<Run<'_, u32>> = parts
        .iter()
        .map(|p| match dir {
            Direction::Ascending => Run::asc(p),
            Direction::Descending => Run::desc(p),
        })
        .collect();
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    pway_merge_into(&runs, dir, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitonic_core::tagged::sorted_independently;

    fn cfg() -> BulkConfig {
        BulkConfig::on()
    }

    fn sort_via_plan(keys: &[u32], bands: &[usize], dir: Direction) -> Vec<u32> {
        let plan = plan(keys, bands, &cfg());
        let sorted: Vec<Vec<u32>> = plan
            .parts
            .iter()
            .map(|p| sorted_independently(&p.keys, dir))
            .collect();
        merge_parts(&sorted, dir)
    }

    #[test]
    fn the_plan_partitions_every_key_exactly_once() {
        let keys: Vec<u32> = (0..40_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761).rotate_left(9))
            .collect();
        let bands = [4_096, 16_384];
        let p = plan(&keys, &bands, &cfg());
        let total: usize = p.parts.iter().map(|x| x.keys.len()).sum();
        assert_eq!(total, keys.len());
        assert_eq!(p.splitters.len(), 1);
        assert!(p.samples > 0);
        // Every chunk is admissible on its shard.
        for part in &p.parts {
            assert!(part.keys.len() <= bands[part.shard], "{part:?}");
        }
    }

    #[test]
    fn random_input_respects_the_configured_skew_bound() {
        let keys: Vec<u32> = (0..60_000u32)
            .map(|i| i.wrapping_mul(0x9E37_79B9).rotate_left(13))
            .collect();
        let p = plan(&keys, &[4_096, 16_384], &cfg());
        assert!(
            p.max_skew() <= cfg().skew_bound,
            "max skew {} exceeds the bound {}",
            p.max_skew(),
            cfg().skew_bound
        );
    }

    #[test]
    fn degenerate_inputs_still_sort_via_chunking() {
        let bands = [64, 256];
        for (name, keys) in [
            ("all equal", vec![7u32; 1_000]),
            ("presorted", (0..1_000u32).collect()),
            ("reversed", (0..1_000u32).rev().collect()),
            ("two values", (0..1_000u32).map(|i| i % 2).collect()),
        ] {
            for dir in [Direction::Ascending, Direction::Descending] {
                let got = sort_via_plan(&keys, &bands, dir);
                assert_eq!(got, sorted_independently(&keys, dir), "{name} {dir:?}");
            }
        }
    }

    #[test]
    fn tiny_inputs_split_fine_even_below_the_shard_count() {
        let got = sort_via_plan(&[9, 1], &[64, 256, 1024], Direction::Ascending);
        assert_eq!(got, vec![1, 9]);
    }

    #[test]
    fn plans_are_a_pure_function_of_keys_bands_and_seed() {
        let keys: Vec<u32> = (0..20_000u32).map(|i| i.wrapping_mul(48_271)).collect();
        let a = plan(&keys, &[4_096, 16_384], &cfg());
        let b = plan(&keys, &[4_096, 16_384], &cfg());
        assert_eq!(a, b);
        let mut other = cfg();
        other.seed ^= 0xFFFF;
        let c = plan(&keys, &[4_096, 16_384], &other);
        assert_ne!(a.splitters, c.splitters, "a new seed samples differently");
    }

    #[test]
    fn oversampling_grows_with_tighter_bounds_and_more_shards() {
        assert!(oversample_factor(2, 1.1) > oversample_factor(2, 1.5));
        assert!(oversample_factor(8, 1.2) >= oversample_factor(2, 1.2));
        assert_eq!(oversample_factor(2, 100.0), 64, "floor holds");
        assert_eq!(oversample_factor(64, 1.001), 512, "ceiling holds");
    }

    #[test]
    fn record_plans_scatter_rows_with_their_keys_and_merge_stably() {
        use bitonic_core::tagged::records_sorted_independently;
        // Duplicate-heavy u64 keys, payload row = the original index.
        let keys: Vec<u64> = (0..1_000u64).map(|i| (i * 7) % 16).collect();
        let bands = [64, 256];
        let p = plan_records(&keys, &bands, &cfg());
        let total: usize = p.parts.iter().map(|x| x.keys.len()).sum();
        assert_eq!(total, keys.len());
        for part in &p.parts {
            assert!(part.keys.len() <= bands[part.shard]);
            for (k, &row) in part.keys.iter().zip(&part.rows) {
                assert_eq!(*k, keys[row as usize], "rows point at their keys");
            }
        }
        for dir in [Direction::Ascending, Direction::Descending] {
            // Stable sub-sorts per part, then a tie-to-earlier-part merge:
            // the payload must come back in exactly the stable oracle's
            // permutation of the whole request.
            let sorted: Vec<(Vec<u64>, Vec<u8>)> = p
                .parts
                .iter()
                .map(|part| {
                    let seg = records_sorted_independently(&part.keys, dir);
                    let payload: Vec<u8> = seg
                        .perm
                        .iter()
                        .flat_map(|&i| part.rows[i as usize].to_le_bytes())
                        .collect();
                    (seg.keys, payload)
                })
                .collect();
            let (got_keys, got_payload) = merge_record_parts(&sorted, 4, dir);
            let oracle = records_sorted_independently(&keys, dir);
            assert_eq!(got_keys, oracle.keys);
            let got_rows: Vec<u32> = got_payload
                .chunks(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            assert_eq!(got_rows, oracle.perm, "{dir:?} payload order is stable");
        }
    }

    #[test]
    fn bulk_failures_render_the_shard_and_reason() {
        let f = BulkFailure {
            shard: 2,
            reason: BulkReason::Shed(Rejection::QueueFull {
                queued: 9,
                limit: 8,
            }),
        };
        let msg = f.to_string();
        assert!(msg.contains("shard 2") && msg.contains("shed"), "{msg}");
        assert_eq!(f.reason.label(), "shed");
        assert_eq!(BulkReason::Closed.label(), "closed");
    }
}
