//! The adaptive batch coalescer: when to stop waiting for more load.
//!
//! Waiting grows the batch, and a bigger batch has a lower predicted
//! per-key cost — the paper's `n/P` amortization applied to requests.
//! But waiting also spends each pending request's deadline slack. The
//! coalescer resolves the tradeoff with the `logp` cost model: it keeps
//! waiting only while (a) another doubling of the batch is still
//! predicted to cut per-key cost meaningfully, (b) the tightest pending
//! deadline retains slack beyond the predicted run time, and (c) the
//! oldest request has not yet waited the configured maximum.
//!
//! The model predicts *Meiko CS-2* microseconds, not host wall-clock;
//! what the coalescer consumes is the shape of the curve (where
//! amortization saturates), which the calibrated constants preserve.

use crate::config::ServiceConfig;
use logp::predict::{predict, Messages};
use logp::{CostModel, LogGpParams, StrategyKind};
use std::time::Duration;

/// Predicted cost of one tagged batch run, wrapping `logp::predict` with
/// the service's padding rule (power-of-two keys per rank).
#[derive(Debug, Clone)]
pub struct BatchCost {
    params: LogGpParams,
    model: CostModel,
    procs: usize,
}

impl BatchCost {
    /// The calibrated Meiko CS-2 model for a `procs`-rank machine.
    #[must_use]
    pub fn new(procs: usize) -> Self {
        BatchCost {
            params: LogGpParams::meiko_cs2(procs),
            model: CostModel::meiko_cs2(),
            procs,
        }
    }

    /// Keys per rank after the service pads `total_keys` to a
    /// machine-runnable shape.
    #[must_use]
    pub fn padded_per_rank(&self, total_keys: usize) -> usize {
        total_keys.div_ceil(self.procs).next_power_of_two().max(2)
    }

    /// Predicted model time to sort a batch of `total_keys` keys.
    #[must_use]
    pub fn predicted_run(&self, total_keys: usize) -> Duration {
        let per_rank = self.padded_per_rank(total_keys);
        let p = predict(
            StrategyKind::Smart,
            per_rank * self.procs,
            self.procs,
            &self.params,
            &self.model,
            Messages::Long { fused: true },
        );
        Duration::from_secs_f64(p.total_seconds(per_rank))
    }

    /// Predicted model cost per *useful* key of a `total_keys` batch
    /// (padding is pure overhead, so it inflates this figure — exactly
    /// the amortization signal the coalescer wants).
    #[must_use]
    pub fn per_key_us(&self, total_keys: usize) -> f64 {
        self.predicted_run(total_keys).as_secs_f64() * 1e6 / total_keys.max(1) as f64
    }

    /// Fraction by which doubling the batch is predicted to cut per-key
    /// cost. Monotonically shrinks as fixed costs amortize away.
    #[must_use]
    pub fn doubling_gain(&self, total_keys: usize) -> f64 {
        let now = self.per_key_us(total_keys);
        let doubled = self.per_key_us(total_keys * 2);
        if now <= 0.0 {
            return 0.0;
        }
        ((now - doubled) / now).max(0.0)
    }
}

/// What the dispatcher should do with the queue right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Form and run a batch from the pending requests.
    Flush,
    /// Hold for at most this long hoping for more load, then re-decide.
    Wait(Duration),
}

/// The flush/wait policy. Pure and deterministic: a function of the
/// queue snapshot, so it can be unit-tested without a running service.
#[derive(Debug, Clone)]
pub struct Coalescer {
    cost: BatchCost,
    max_batch_keys: usize,
    max_wait: Duration,
    gain_threshold: f64,
}

impl Coalescer {
    /// Policy for `cfg`.
    #[must_use]
    pub fn new(cfg: &ServiceConfig) -> Self {
        Coalescer {
            cost: BatchCost::new(cfg.procs),
            max_batch_keys: cfg.max_batch_keys,
            max_wait: cfg.max_wait,
            gain_threshold: cfg.gain_threshold,
        }
    }

    /// The cost model the policy consults.
    #[must_use]
    pub fn cost(&self) -> &BatchCost {
        &self.cost
    }

    /// Decide for a queue holding `pending_keys` keys whose oldest
    /// request has waited `oldest_age` and whose tightest deadline has
    /// `tightest_slack` left. `draining` (service shutting down) flushes
    /// unconditionally.
    #[must_use]
    pub fn decide(
        &self,
        pending_keys: usize,
        oldest_age: Duration,
        tightest_slack: Duration,
        draining: bool,
    ) -> Verdict {
        if draining || pending_keys >= self.max_batch_keys {
            return Verdict::Flush;
        }
        if oldest_age >= self.max_wait {
            return Verdict::Flush;
        }
        // Keep enough slack to actually run the batch after waiting.
        let run = self.cost.predicted_run(pending_keys);
        let spendable = tightest_slack.saturating_sub(run);
        if spendable.is_zero() {
            return Verdict::Flush;
        }
        // Amortization saturated: another doubling no longer pays for the
        // wait, so take what is here.
        if self.cost.doubling_gain(pending_keys) < self.gain_threshold {
            return Verdict::Flush;
        }
        let budget = self.max_wait - oldest_age;
        Verdict::Wait(budget.min(spendable))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coalescer() -> Coalescer {
        let mut cfg = ServiceConfig::new(4);
        cfg.max_batch_keys = 1 << 16;
        cfg.max_wait = Duration::from_millis(10);
        Coalescer::new(&cfg)
    }

    #[test]
    fn amortization_gain_shrinks_with_batch_size() {
        let c = BatchCost::new(4);
        let small = c.doubling_gain(64);
        let large = c.doubling_gain(1 << 16);
        assert!(
            small > large,
            "doubling a small batch must pay more than doubling a big one \
             ({small} vs {large})"
        );
        assert!(large < 0.2, "amortization saturates: {large}");
    }

    #[test]
    fn per_key_cost_falls_while_fixed_costs_dominate() {
        // Small batches are dominated by per-remap fixed costs, so
        // growing them cuts per-key cost; past the knee the extra bitonic
        // stages take over and the gain clamps to zero, which is exactly
        // the "stop waiting" signal.
        let c = BatchCost::new(4);
        assert!(c.per_key_us(64) > c.per_key_us(4096));
        assert_eq!(c.doubling_gain(1 << 20), 0.0, "past the knee: no gain");
    }

    #[test]
    fn full_batches_flush() {
        let c = coalescer();
        let v = c.decide(1 << 16, Duration::ZERO, Duration::from_secs(10), false);
        assert_eq!(v, Verdict::Flush);
    }

    #[test]
    fn exhausted_wait_budget_flushes() {
        let c = coalescer();
        let v = c.decide(
            64,
            Duration::from_millis(10),
            Duration::from_secs(10),
            false,
        );
        assert_eq!(v, Verdict::Flush);
    }

    #[test]
    fn exhausted_deadline_slack_flushes() {
        let c = coalescer();
        let v = c.decide(64, Duration::ZERO, Duration::ZERO, false);
        assert_eq!(v, Verdict::Flush);
    }

    #[test]
    fn draining_flushes_immediately() {
        let c = coalescer();
        let v = c.decide(64, Duration::ZERO, Duration::from_secs(10), true);
        assert_eq!(v, Verdict::Flush);
    }

    #[test]
    fn small_young_batches_wait_bounded_by_budget_and_slack() {
        let c = coalescer();
        match c.decide(64, Duration::from_millis(4), Duration::from_secs(10), false) {
            Verdict::Wait(d) => {
                assert!(d <= Duration::from_millis(6), "bounded by max_wait: {d:?}");
                assert!(!d.is_zero());
            }
            Verdict::Flush => panic!("a tiny young batch with slack should wait"),
        }
    }

    #[test]
    fn saturated_batches_flush_without_waiting() {
        // Far past the knee of the curve the gain from doubling is under
        // the threshold even though the cap is not reached.
        let mut cfg = ServiceConfig::new(4);
        cfg.max_batch_keys = 1 << 24;
        let c = Coalescer::new(&cfg);
        let v = c.decide(1 << 20, Duration::ZERO, Duration::from_secs(100), false);
        assert_eq!(v, Verdict::Flush);
    }
}
