//! The TCP wire frontend: `SORT_1` frames over real sockets.
//!
//! Everything before this module drives the service in-process; here the
//! request path grows a byte-exact boundary. The frame codec defines the
//! length-prefixed `SORT_1` wire format (requests, structured replies,
//! and [`FrameError`]s — decoding never panics), [`WireServer`] serves it
//! on a `std::net::TcpListener` with per-connection reader threads whose
//! stalls become structured [`Disconnect`]s, [`WireClient`] is the blocking
//! loopback client `experiments bench7` and the conformance suite use,
//! and [`chaos`] injects deterministic connection faults (half-open,
//! slow-loris, mid-frame cuts, malformed frames) from a seed.
//!
//! The text frontend (`bitonic-sort serve`) shares this module's
//! validation path: [`parse_text_request`] round-trips every stdin line
//! through the same codec the socket uses, so there is one source of
//! truth for what a well-formed request is.

pub mod chaos;
mod client;
mod frame;
mod server;

pub use client::{WireClient, WireError};
pub use frame::{
    parse_text_request, FrameError, ReplyFrame, RequestFrame, LEN_PREFIX, MAGIC, REPLY_HEADER,
    REQUEST_HEADER, SORTABLE_WIDTHS, SUPPORTED_WIDTHS, VERSION,
};
pub use server::{
    Disconnect, WireConfig, WireReport, WireServer, WireStats, DISCONNECT_LABELS, REJECTION_LABELS,
};
