//! The TCP wire frontend: [`WireServer`] serves `SORT_1` frames on a
//! `std::net::TcpListener` with one reader thread per connection.
//!
//! Each connection is handled serially — read one frame, submit it
//! through the owning [`SortService`]'s admission gate, wait for the
//! ticket, write one reply — so reply ordering per connection is
//! trivially the request order; concurrency comes from connections, not
//! from pipelining. Backpressure is exactly the admission gate's: a shed
//! becomes a structured [`crate::Rejection`] reply on the wire and the
//! connection stays open.
//!
//! Stalls become structured [`Disconnect`]s via per-connection
//! deadlines. Reads poll on [`WireConfig::poll_tick`] so a blocked
//! `read` is really a timer: a connection that sends *no* byte of a new
//! frame within [`WireConfig::idle_timeout`] is dropped as
//! [`Disconnect::IdleTimeout`] (the half-open case), one that starts a
//! frame but does not finish it within [`WireConfig::read_timeout`] of
//! its first byte is dropped as [`Disconnect::ReadStall`] (the
//! slow-loris case), and a reply the peer will not drain within
//! [`WireConfig::write_timeout`] is [`Disconnect::WriteStall`].
//! Malformed frames get a best-effort `bad_frame` reply echoing the
//! [`FrameError::code`], then [`Disconnect::BadFrame`].
//!
//! Every event is counted twice on purpose: in the lock-guarded
//! [`WireStats`] snapshot (exact, test-facing) and — when the service
//! has metrics on — in wire counters registered in the *same* registry
//! as [`crate::ServiceMetrics`], so `--check` runs reconcile wire
//! totals against `ServiceStats` and the registry in one snapshot.

use crate::admission::Rejection;
use crate::config::{ServiceConfig, ShardedConfig};
use crate::metrics::{ServiceMetrics, WireMetrics};
use crate::net::frame::{FrameError, ReplyFrame, RequestFrame, LEN_PREFIX};
use crate::server::{
    RecordRequest, RecordTicket, ServiceReport, ServiceStats, SortRequest, SortService, Ticket,
};
use crate::shard::{ShardedReport, ShardedService};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of the wire frontend (the service itself is configured by
/// [`ServiceConfig`]).
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Largest frame payload a peer may declare; larger declarations are
    /// answered `bad_frame` (oversized) and disconnected.
    pub max_frame_bytes: usize,
    /// Drop a connection that sends no byte of a new frame for this
    /// long (detects half-open peers).
    pub idle_timeout: Duration,
    /// Drop a connection whose started frame is still incomplete this
    /// long after its first byte (defeats slow-loris writers).
    pub read_timeout: Duration,
    /// Drop a connection that will not drain a reply within this budget.
    pub write_timeout: Duration,
    /// Socket poll granularity; stall checks run on this tick.
    pub poll_tick: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_frame_bytes: 1 << 22,
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            poll_tick: Duration::from_millis(20),
        }
    }
}

impl WireConfig {
    /// A config with tight stall deadlines, for fault-conformance tests
    /// that want idle/stall classification in milliseconds, not seconds.
    #[must_use]
    pub fn fast_faults() -> Self {
        WireConfig {
            idle_timeout: Duration::from_millis(150),
            read_timeout: Duration::from_millis(150),
            write_timeout: Duration::from_millis(300),
            poll_tick: Duration::from_millis(5),
            ..WireConfig::default()
        }
    }
}

/// Why the server closed one connection. Every connection ends in
/// exactly one of these; [`WireStats::disconnects`] tallies them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disconnect {
    /// The peer closed cleanly between frames.
    CleanEof,
    /// The peer vanished (EOF or reset) in the middle of a frame.
    MidFrameEof,
    /// No byte of a new frame arrived within the idle window — the
    /// half-open / silent-peer case.
    IdleTimeout,
    /// A frame was started but not completed within the read budget —
    /// the slow-loris case.
    ReadStall,
    /// The peer would not drain a reply within the write budget.
    WriteStall,
    /// The peer sent a malformed frame; a `bad_frame` reply was
    /// attempted first.
    BadFrame(FrameError),
    /// The server shut down while the connection was open.
    ServerClosed,
}

/// Disconnect-reason labels, in [`WireStats::disconnects`] index order.
pub const DISCONNECT_LABELS: [&str; 7] = [
    "clean_eof",
    "mid_frame_eof",
    "idle_timeout",
    "read_stall",
    "write_stall",
    "bad_frame",
    "server_closed",
];

/// Rejection-reason labels, in [`WireStats::rejections`] index order
/// (the same order `ClassMetrics` registers shed-reason counters).
pub const REJECTION_LABELS: [&str; 5] = [
    "closed",
    "too_large",
    "queue_full",
    "queue_overflow",
    "deadline_unmeetable",
];

impl Disconnect {
    fn idx(&self) -> usize {
        match self {
            Disconnect::CleanEof => 0,
            Disconnect::MidFrameEof => 1,
            Disconnect::IdleTimeout => 2,
            Disconnect::ReadStall => 3,
            Disconnect::WriteStall => 4,
            Disconnect::BadFrame(_) => 5,
            Disconnect::ServerClosed => 6,
        }
    }

    /// Stable label naming the reason — the `reason` label on
    /// `bitonic_wire_disconnects_total`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        DISCONNECT_LABELS[self.idx()]
    }
}

fn rejection_idx(r: &Rejection) -> usize {
    match r {
        Rejection::Closed => 0,
        Rejection::TooLarge { .. } => 1,
        Rejection::QueueFull { .. } => 2,
        Rejection::QueueOverflow { .. } => 3,
        Rejection::DeadlineUnmeetable { .. } => 4,
    }
}

/// Exact wire-side counters, snapshot via [`WireServer::wire_stats`].
///
/// The reconciliation contract (asserted by `tests/wire.rs` and
/// `experiments bench7 --check`): when every request reaches the service
/// through the wire, `frames_read == ServiceStats::submitted`,
/// `replies_ok + replies_record == completed`, `expired`/`failed`
/// match, and `rejections[i]` equals the registry's
/// `bitonic_requests_shed_total{reason=REJECTION_LABELS[i]}`.
#[derive(Debug, Clone, Default)]
pub struct WireStats {
    /// Connections accepted.
    pub connections_opened: u64,
    /// Connections fully closed (handler exited).
    pub connections_closed: u64,
    /// Well-formed request frames accepted for submission (plain and
    /// record alike).
    pub frames_read: u64,
    /// Bytes read off all sockets.
    pub bytes_read: u64,
    /// Bytes written to all sockets.
    pub bytes_written: u64,
    /// `ok` replies (sorted keys) formed.
    pub replies_ok: u64,
    /// `ok_record` replies (sorted keys plus payload) formed.
    pub replies_record: u64,
    /// `expired` replies formed.
    pub expired: u64,
    /// `machine_failed` replies formed.
    pub failed: u64,
    /// `service_closed` replies formed.
    pub closed_replies: u64,
    /// `bulk_failed` replies formed (a bulk sub-request sank on one
    /// shard; the connection stayed open).
    pub bulk_failed: u64,
    /// Rejection replies formed, indexed by [`REJECTION_LABELS`].
    pub rejections: [u64; 5],
    /// Malformed frames seen (by any [`FrameError`]).
    pub frame_errors: u64,
    /// Connection closes, indexed by [`DISCONNECT_LABELS`].
    pub disconnects: [u64; 7],
}

impl WireStats {
    /// Rejection replies across all reasons.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.rejections.iter().sum()
    }

    /// Rejection replies for one [`Rejection::label`].
    #[must_use]
    pub fn rejection(&self, label: &str) -> u64 {
        REJECTION_LABELS
            .iter()
            .position(|l| *l == label)
            .map_or(0, |i| self.rejections[i])
    }

    /// Disconnects for one [`Disconnect::label`].
    #[must_use]
    pub fn disconnect(&self, label: &str) -> u64 {
        DISCONNECT_LABELS
            .iter()
            .position(|l| *l == label)
            .map_or(0, |i| self.disconnects[i])
    }

    /// Total connection closes across all reasons.
    #[must_use]
    pub fn disconnects_total(&self) -> u64 {
        self.disconnects.iter().sum()
    }
}

/// What a finished wire server hands back.
#[derive(Debug)]
pub struct WireReport {
    /// Final wire-side counters.
    pub wire: WireStats,
    /// The inner single-pool service's final report. A server started
    /// with [`WireServer::start_sharded`] has no single pool; this is
    /// then an empty placeholder and [`WireReport::sharded`] carries
    /// the real report.
    pub service: ServiceReport,
    /// The inner sharded service's final report, for servers started
    /// with [`WireServer::start_sharded`].
    pub sharded: Option<ShardedReport>,
}

/// The service behind the listener: one warm pool, or the sharded
/// router stack (which is what makes wire-level bulk requests
/// answerable instead of `too_large`).
#[derive(Clone)]
enum Backend {
    Single(Arc<SortService>),
    Sharded(Arc<ShardedService>),
}

impl Backend {
    fn submit(&self, request: SortRequest) -> Result<Ticket, Rejection> {
        match self {
            Backend::Single(s) => s.submit(request),
            Backend::Sharded(s) => s.submit(request),
        }
    }

    fn submit_record(&self, request: RecordRequest) -> Result<RecordTicket, Rejection> {
        match self {
            Backend::Single(s) => s.submit_record(request),
            Backend::Sharded(s) => s.submit_record(request),
        }
    }

    fn metrics(&self) -> Option<Arc<ServiceMetrics>> {
        match self {
            Backend::Single(s) => s.metrics(),
            Backend::Sharded(s) => s.metrics(),
        }
    }
}

struct WireShared {
    cfg: WireConfig,
    stats: Mutex<WireStats>,
    conns: Mutex<Vec<TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    shutdown: AtomicBool,
    metrics: Option<WireMetrics>,
}

impl WireShared {
    fn note_bytes_read(&self, n: u64) {
        self.stats.lock().expect("wire stats").bytes_read += n;
        if let Some(m) = &self.metrics {
            m.bytes_read_total.add(n);
        }
    }

    fn note_bytes_written(&self, n: u64) {
        self.stats.lock().expect("wire stats").bytes_written += n;
        if let Some(m) = &self.metrics {
            m.bytes_written_total.add(n);
        }
    }

    fn note_frame(&self) {
        self.stats.lock().expect("wire stats").frames_read += 1;
        if let Some(m) = &self.metrics {
            m.frames_total.inc();
        }
    }

    fn note_frame_error(&self, e: &FrameError) {
        self.stats.lock().expect("wire stats").frame_errors += 1;
        if let Some(m) = &self.metrics {
            m.record_frame_error(e.label());
        }
    }

    fn note_reply(&self, reply: &ReplyFrame) {
        {
            let mut s = self.stats.lock().expect("wire stats");
            match reply {
                ReplyFrame::Sorted(_) => s.replies_ok += 1,
                ReplyFrame::Record { .. } => s.replies_record += 1,
                ReplyFrame::Rejected(r) => s.rejections[rejection_idx(r)] += 1,
                ReplyFrame::Expired { .. } => s.expired += 1,
                ReplyFrame::Failed(_) => s.failed += 1,
                ReplyFrame::ServiceClosed => s.closed_replies += 1,
                ReplyFrame::BadFrame(_) => {}
                ReplyFrame::BulkFailed { .. } => s.bulk_failed += 1,
            }
        }
        if let Some(m) = &self.metrics {
            m.record_reply(reply.label(), matches!(reply, ReplyFrame::Rejected(_)));
        }
    }

    fn note_conn_opened(&self) {
        self.stats.lock().expect("wire stats").connections_opened += 1;
        if let Some(m) = &self.metrics {
            m.connections_total.inc();
            m.connections.add(1.0);
        }
    }

    fn note_conn_closed(&self, why: &Disconnect) {
        {
            let mut s = self.stats.lock().expect("wire stats");
            s.connections_closed += 1;
            s.disconnects[why.idx()] += 1;
        }
        if let Some(m) = &self.metrics {
            m.connections.add(-1.0);
            m.record_disconnect(why.label());
        }
    }
}

/// A running TCP frontend: a [`SortService`] behind a listener.
///
/// Start with [`WireServer::start`], read the bound address with
/// [`WireServer::local_addr`] (bind to port 0 for loopback tests), and
/// finish with [`WireServer::shutdown`] for the final [`WireReport`].
pub struct WireServer {
    service: Option<Backend>,
    shared: Arc<WireShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl WireServer {
    /// Bind `addr`, boot the service, and start accepting connections.
    ///
    /// # Errors
    /// The bind error, when the address is unusable.
    ///
    /// # Panics
    /// Panics if `config` fails [`ServiceConfig::validate`].
    pub fn start(config: ServiceConfig, wire: WireConfig, addr: &str) -> std::io::Result<Self> {
        Self::boot(
            Backend::Single(Arc::new(SortService::start(config))),
            wire,
            addr,
        )
    }

    /// [`WireServer::start`] over a sharded service: requests route by
    /// size class, and — when `config.bulk` is enabled — requests
    /// larger than every band are answered via split/scatter/merge
    /// instead of being refused `too_large`.
    ///
    /// # Errors
    /// The bind error, when the address is unusable.
    ///
    /// # Panics
    /// Panics if `config` fails [`ShardedConfig::validate`].
    pub fn start_sharded(
        config: ShardedConfig,
        wire: WireConfig,
        addr: &str,
    ) -> std::io::Result<Self> {
        Self::boot(
            Backend::Sharded(Arc::new(ShardedService::start(config))),
            wire,
            addr,
        )
    }

    fn boot(backend: Backend, wire: WireConfig, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics = backend.metrics().map(|m| m.wire_handles());
        let shared = Arc::new(WireShared {
            cfg: wire,
            stats: Mutex::new(WireStats::default()),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            metrics,
        });
        let accept_backend = backend.clone();
        let accept_shared = Arc::clone(&shared);
        let accept =
            std::thread::spawn(move || accept_loop(&listener, &accept_backend, &accept_shared));
        Ok(WireServer {
            service: Some(backend),
            shared,
            addr: local,
            accept: Some(accept),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the wire-side counters.
    #[must_use]
    pub fn wire_stats(&self) -> WireStats {
        self.shared.stats.lock().expect("wire stats").clone()
    }

    /// Snapshot of the inner single-pool service's counters. For a
    /// server started with [`WireServer::start_sharded`] this is an
    /// empty placeholder; use [`WireServer::sharded_stats`] there.
    #[must_use]
    pub fn service_stats(&self) -> ServiceStats {
        match self.service.as_ref().expect("service running") {
            Backend::Single(s) => s.stats(),
            Backend::Sharded(_) => ServiceStats::default(),
        }
    }

    /// Snapshot of the inner sharded service's counters, when the
    /// server was started with [`WireServer::start_sharded`].
    #[must_use]
    pub fn sharded_stats(&self) -> Option<crate::shard::ShardedStats> {
        match self.service.as_ref().expect("service running") {
            Backend::Single(_) => None,
            Backend::Sharded(s) => Some(s.stats()),
        }
    }

    /// The inner service's metrics plane, when enabled.
    #[must_use]
    pub fn metrics(&self) -> Option<Arc<ServiceMetrics>> {
        self.service.as_ref().and_then(|s| s.metrics())
    }

    /// Stop accepting, drop open connections (as
    /// [`Disconnect::ServerClosed`]), drain the service, and report.
    ///
    /// # Panics
    /// Panics if the server was already stopped (cannot happen through
    /// the public API, which consumes `self`).
    #[must_use]
    pub fn shutdown(mut self) -> WireReport {
        self.stop().expect("server not yet stopped")
    }

    fn stop(&mut self) -> Option<WireReport> {
        let service = self.service.take()?;
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection, then force every
        // open connection's reader off its socket.
        let _ = TcpStream::connect(self.addr);
        for s in self.shared.conns.lock().expect("conn list").drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handlers: Vec<_> = self
            .shared
            .handlers
            .lock()
            .expect("handler list")
            .drain(..)
            .collect();
        for h in handlers {
            let _ = h.join();
        }
        let wire = self.shared.stats.lock().expect("wire stats").clone();
        Some(match service {
            Backend::Single(s) => {
                let s = Arc::try_unwrap(s).expect("all connection handlers joined");
                WireReport {
                    wire,
                    service: s.shutdown(),
                    sharded: None,
                }
            }
            Backend::Sharded(s) => {
                let s = Arc::try_unwrap(s).expect("all connection handlers joined");
                WireReport {
                    wire,
                    service: ServiceReport {
                        stats: ServiceStats::default(),
                        trace: obs::RankTrace::default(),
                    },
                    sharded: Some(s.shutdown()),
                }
            }
        })
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

fn accept_loop(listener: &TcpListener, backend: &Backend, shared: &Arc<WireShared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.note_conn_opened();
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conn list").push(clone);
        }
        let backend = backend.clone();
        let shared_for_conn = Arc::clone(shared);
        let handle = std::thread::spawn(move || handle_conn(stream, &backend, &shared_for_conn));
        shared.handlers.lock().expect("handler list").push(handle);
    }
}

fn handle_conn(mut stream: TcpStream, backend: &Backend, shared: &WireShared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.poll_tick));
    let _ = stream.set_write_timeout(Some(shared.cfg.poll_tick));
    let why = serve_conn(&mut stream, backend, shared);
    let _ = stream.shutdown(Shutdown::Both);
    shared.note_conn_closed(&why);
}

/// Serve one connection until it ends; returns how it ended.
fn serve_conn(stream: &mut TcpStream, backend: &Backend, shared: &WireShared) -> Disconnect {
    loop {
        let payload = match read_frame(stream, shared) {
            Ok(p) => p,
            Err(why) => {
                if let Disconnect::BadFrame(e) = &why {
                    shared.note_frame_error(e);
                    let _ = write_reply(stream, &ReplyFrame::BadFrame(e.code()), shared);
                }
                return why;
            }
        };
        let frame = match RequestFrame::decode(&payload) {
            Ok(f) => f,
            Err(e) => {
                shared.note_frame_error(&e);
                let _ = write_reply(stream, &ReplyFrame::BadFrame(e.code()), shared);
                return Disconnect::BadFrame(e);
            }
        };
        let reply = if frame.is_record() {
            // Wide keys and/or a payload section: the record path.
            let request = match frame.into_record_request() {
                Ok(r) => r,
                Err(e) => {
                    shared.note_frame_error(&e);
                    let _ = write_reply(stream, &ReplyFrame::BadFrame(e.code()), shared);
                    return Disconnect::BadFrame(e);
                }
            };
            shared.note_frame();
            match backend.submit_record(request) {
                Ok(ticket) => match ticket.wait() {
                    Ok(reply) => ReplyFrame::Record {
                        keys: reply.keys,
                        payload: reply.payload,
                        stride: reply.stride as u32,
                    },
                    Err(err) => ReplyFrame::from_error(&err),
                },
                Err(rejection) => ReplyFrame::Rejected(rejection),
            }
        } else {
            let request = match frame.into_request() {
                Ok(r) => r,
                Err(e) => {
                    shared.note_frame_error(&e);
                    let _ = write_reply(stream, &ReplyFrame::BadFrame(e.code()), shared);
                    return Disconnect::BadFrame(e);
                }
            };
            shared.note_frame();
            match backend.submit(request) {
                Ok(ticket) => match ticket.wait() {
                    Ok(keys) => ReplyFrame::Sorted(keys),
                    Err(err) => ReplyFrame::from_error(&err),
                },
                Err(rejection) => ReplyFrame::Rejected(rejection),
            }
        };
        shared.note_reply(&reply);
        if let Err(why) = write_reply(stream, &reply, shared) {
            return why;
        }
    }
}

/// Read one length-prefixed frame payload, classifying every way the
/// read can end early.
fn read_frame(stream: &mut TcpStream, shared: &WireShared) -> Result<Vec<u8>, Disconnect> {
    let idle_from = Instant::now();
    let mut first_byte: Option<Instant> = None;
    let mut prefix = [0u8; LEN_PREFIX];
    fill(stream, &mut prefix, shared, idle_from, &mut first_byte)?;
    let declared = u32::from_le_bytes(prefix) as usize;
    if declared > shared.cfg.max_frame_bytes {
        return Err(Disconnect::BadFrame(FrameError::Oversized {
            declared,
            limit: shared.cfg.max_frame_bytes,
        }));
    }
    let mut payload = vec![0u8; declared];
    fill(stream, &mut payload, shared, idle_from, &mut first_byte)?;
    Ok(payload)
}

/// Read exactly `buf.len()` bytes on the poll tick, converting EOFs and
/// stalls into [`Disconnect`]s. `first_byte` spans the whole frame, so a
/// slow-loris peer cannot reset the budget by trickling bytes.
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &WireShared,
    idle_from: Instant,
    first_byte: &mut Option<Instant>,
) -> Result<(), Disconnect> {
    let mut got = 0usize;
    while got < buf.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(Disconnect::ServerClosed);
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                // An EOF raced the shutdown flag: the close is ours, not
                // the peer's.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Err(Disconnect::ServerClosed);
                }
                return Err(if first_byte.is_none() {
                    Disconnect::CleanEof
                } else {
                    Disconnect::MidFrameEof
                });
            }
            Ok(n) => {
                got += n;
                first_byte.get_or_insert_with(Instant::now);
                shared.note_bytes_read(n as u64);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                match first_byte {
                    None => {
                        if idle_from.elapsed() >= shared.cfg.idle_timeout {
                            return Err(Disconnect::IdleTimeout);
                        }
                    }
                    Some(t) => {
                        if t.elapsed() >= shared.cfg.read_timeout {
                            return Err(Disconnect::ReadStall);
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Err(Disconnect::ServerClosed);
                }
                // Reset / aborted: the peer vanished.
                return Err(if first_byte.is_none() {
                    Disconnect::CleanEof
                } else {
                    Disconnect::MidFrameEof
                });
            }
        }
    }
    Ok(())
}

/// Write one encoded reply on the poll tick under the write budget.
fn write_reply(
    stream: &mut TcpStream,
    reply: &ReplyFrame,
    shared: &WireShared,
) -> Result<(), Disconnect> {
    let bytes = reply.encode();
    let started = Instant::now();
    let mut sent = 0usize;
    while sent < bytes.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(Disconnect::ServerClosed);
        }
        match stream.write(&bytes[sent..]) {
            Ok(0) => return Err(Disconnect::MidFrameEof),
            Ok(n) => {
                sent += n;
                shared.note_bytes_written(n as u64);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if started.elapsed() >= shared.cfg.write_timeout {
                    return Err(Disconnect::WriteStall);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(Disconnect::MidFrameEof),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::WireClient;
    use bitonic_network::Direction;

    fn server() -> WireServer {
        let mut cfg = ServiceConfig::new(2);
        cfg.batch_watchdog = Some(Duration::from_millis(500));
        WireServer::start(cfg, WireConfig::default(), "127.0.0.1:0").expect("bind loopback")
    }

    #[test]
    fn loopback_round_trip_reconciles_wire_and_service_stats() {
        let srv = server();
        let mut client = WireClient::connect(srv.local_addr()).unwrap();
        let reply = client
            .sort(&[5, 1, 9, 1], Direction::Ascending, None)
            .unwrap();
        assert_eq!(reply, ReplyFrame::Sorted(vec![1, 1, 5, 9]));
        let reply = client.sort(&[3, 8], Direction::Descending, None).unwrap();
        assert_eq!(reply, ReplyFrame::Sorted(vec![8, 3]));
        drop(client);
        // Second connection: the empty sort is a valid frame.
        let mut other = WireClient::connect(srv.local_addr()).unwrap();
        let reply = other.sort(&[], Direction::Ascending, None).unwrap();
        assert_eq!(reply, ReplyFrame::Sorted(vec![]));
        drop(other);
        let report = srv.shutdown();
        assert_eq!(report.wire.frames_read, 3);
        assert_eq!(report.wire.replies_ok, 3);
        assert_eq!(
            report.wire.connections_opened,
            report.wire.connections_closed
        );
        assert_eq!(report.wire.frames_read, report.service.stats.submitted);
        assert_eq!(report.wire.replies_ok, report.service.stats.completed);
    }

    #[test]
    fn record_frames_round_trip_with_their_payload_over_loopback() {
        use crate::server::RecordKeys;
        let srv = server();
        let mut client = WireClient::connect(srv.local_addr()).unwrap();
        let frame = RequestFrame::from_u64_keys(&[40, 10, 30, 20], Direction::Ascending, None)
            .with_payload(2, vec![4, 4, 1, 1, 3, 3, 2, 2]);
        let reply = client.exchange(&frame).unwrap();
        assert_eq!(
            reply,
            ReplyFrame::Record {
                keys: RecordKeys::U64(vec![10, 20, 30, 40]),
                payload: vec![1, 1, 2, 2, 3, 3, 4, 4],
                stride: 2,
            }
        );
        // Width-4 with a payload rides the record path too.
        let frame = RequestFrame::from_u32_keys(&[2, 1], Direction::Descending, None)
            .with_payload(1, vec![b'b', b'a']);
        let reply = client.exchange(&frame).unwrap();
        assert_eq!(
            reply,
            ReplyFrame::Record {
                keys: RecordKeys::U32(vec![2, 1]),
                payload: vec![b'b', b'a'],
                stride: 1,
            }
        );
        drop(client);
        let report = srv.shutdown();
        assert_eq!(report.wire.frames_read, 2);
        assert_eq!(report.wire.replies_record, 2);
        assert_eq!(report.wire.replies_ok, 0);
        assert_eq!(report.service.stats.completed, 2);
    }

    #[test]
    fn malformed_frame_gets_a_bad_frame_reply_then_disconnect() {
        let srv = server();
        let mut client = WireClient::connect(srv.local_addr()).unwrap();
        let mut junk = Vec::new();
        junk.extend_from_slice(&24u32.to_le_bytes());
        junk.extend_from_slice(&[0xAB; 24]);
        client.send_raw(&junk).unwrap();
        client
            .set_reply_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let reply = client.read_reply().unwrap();
        assert_eq!(
            reply,
            ReplyFrame::BadFrame(FrameError::BadMagic([0xAB; 4]).code())
        );
        drop(client);
        let report = srv.shutdown();
        assert_eq!(report.wire.frame_errors, 1);
        assert_eq!(report.wire.disconnect("bad_frame"), 1);
        assert_eq!(report.service.stats.submitted, 0);
    }
}
