//! The `SORT_1` wire format: length-prefixed binary frames.
//!
//! Every frame on the wire — request or reply — is a 4-byte
//! little-endian length prefix (the byte count of everything after it)
//! followed by a fixed header and a payload:
//!
//! ```text
//! request                              reply
//! ┌────────────┬──────────────┐       ┌────────────┬──────────────┐
//! │ u32 length │ 20-byte head │       │ u32 length │ 16-byte head │
//! ├────────────┴──────────────┤       ├────────────┴──────────────┤
//! │ magic  "SRT1"  (4 bytes)  │       │ magic  "SRT1"  (4 bytes)  │
//! │ version   1    (u8)       │       │ version   1    (u8)       │
//! │ flags          (u8)       │       │ status         (u8)       │
//! │ key width      (u8)       │       │ key width      (u8)       │
//! │ reserved  0    (u8)       │       │ reserved  0    (u8)       │
//! │ deadline µs    (u64 LE)   │       │ detail a       (u64 LE)   │
//! │ key count      (u32 LE)   │       │ detail b       (u64 LE)   │
//! │ keys  count×width bytes   │       │ body (keys or message)    │
//! │ [payload section]         │       └───────────────────────────┘
//! └───────────────────────────┘
//! ```
//!
//! Flags bit 0 selects the sort direction (0 ascending, 1 descending);
//! bit 1 declares a payload section — a `u32 LE` per-key stride followed
//! by `count × stride` payload bytes after the keys; all other bits must
//! be zero. A deadline of 0 means "server default". The codec accepts
//! any key width in [`SUPPORTED_WIDTHS`]; the serving stack sorts
//! widths 4, 8 and 16 as record requests (width 4 without a payload
//! rides the legacy plain path), and [`RequestFrame::into_record_request`]
//! answers widths 1 and 2 with a structured [`FrameError::BadWidth`].
//!
//! Decoding never panics: every malformed input — short buffer, bad
//! magic, unknown version, ragged key bytes, oversized declaration —
//! maps to a [`FrameError`] that the server echoes on the wire (status
//! `bad_frame`) before closing the connection.
//!
//! Reply status codes are [`ReplyFrame`] variants: `0` carries sorted
//! keys; `1..=5` are the admission [`Rejection`] reasons with the
//! variant's two numeric fields in `detail a`/`detail b`; `6`..`8` are
//! the post-admission [`crate::SortError`] outcomes; `9` echoes a
//! [`FrameError`]; `10` is a structured bulk-sort failure (`detail a`
//! names the shard that sank the request, the body carries the
//! reason); `11` carries a sorted record reply (keys then payload, the
//! stride in `detail b`). Labels round-trip exactly so wire-side shed
//! counters reconcile against the registry's per-reason counters.

use crate::admission::Rejection;
use crate::server::{RecordKeys, RecordRequest, SortError, SortRequest};
use bitonic_network::Direction;
use std::time::Duration;

/// Frame magic: the first four payload bytes of every `SORT_1` frame.
pub const MAGIC: [u8; 4] = *b"SRT1";

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Request header length in bytes (after the length prefix).
pub const REQUEST_HEADER: usize = 20;

/// Reply header length in bytes (after the length prefix).
pub const REPLY_HEADER: usize = 24;

/// Length-prefix size in bytes.
pub const LEN_PREFIX: usize = 4;

/// Key widths (bytes per key) the codec round-trips. The serving stack
/// sorts widths 4, 8 and 16; widths 1 and 2 decode but are refused with
/// [`FrameError::BadWidth`] when converted to a service request.
pub const SUPPORTED_WIDTHS: [u8; 5] = [1, 2, 4, 8, 16];

/// Key widths the serving stack actually sorts (as record requests).
pub const SORTABLE_WIDTHS: [u8; 3] = [4, 8, 16];

/// Flags bit 0: descending order requested.
const FLAG_DESCENDING: u8 = 0b0000_0001;
/// Flags bit 1: the frame carries a payload section after the keys.
const FLAG_PAYLOAD: u8 = 0b0000_0010;
/// All bits a version-1 frame may set.
const FLAG_MASK: u8 = FLAG_DESCENDING | FLAG_PAYLOAD;

/// Why a frame failed to decode. Structured — the server sends the
/// label back on the wire before disconnecting, and tests assert the
/// exact reason, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the declared frame does.
    Truncated {
        /// Bytes the frame declared (or the header needs).
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The declared frame length exceeds the receiver's limit.
    Oversized {
        /// Bytes the frame declared.
        declared: usize,
        /// The receiver's frame-size limit.
        limit: usize,
    },
    /// The first four payload bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Flag bits outside the version-1 mask are set.
    BadFlags(u8),
    /// The key width is not in [`SUPPORTED_WIDTHS`] (or, at the server,
    /// not the width the serving stack sorts).
    BadWidth(u8),
    /// The body length does not equal `count * width`.
    CountMismatch {
        /// Keys the header declared.
        declared: usize,
        /// Key bytes actually present in the body.
        body_bytes: usize,
    },
    /// A reply carried an unknown status code.
    BadStatus(u8),
    /// The payload section is malformed: the stride word is missing, or
    /// the payload bytes present do not equal `count * stride`.
    PayloadMismatch {
        /// Payload bytes the header's count and stride require.
        declared: usize,
        /// Payload bytes actually present.
        body_bytes: usize,
    },
}

impl FrameError {
    /// Stable label naming the error class — the `reason` label on the
    /// `bitonic_wire_frame_errors_total` metric and the detail code
    /// echoed in a `bad_frame` reply.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FrameError::Truncated { .. } => "truncated",
            FrameError::Oversized { .. } => "oversized",
            FrameError::BadMagic(_) => "bad_magic",
            FrameError::BadVersion(_) => "bad_version",
            FrameError::BadFlags(_) => "bad_flags",
            FrameError::BadWidth(_) => "bad_width",
            FrameError::CountMismatch { .. } => "count_mismatch",
            FrameError::BadStatus(_) => "bad_status",
            FrameError::PayloadMismatch { .. } => "payload_mismatch",
        }
    }

    /// Wire code for the `bad_frame` reply detail byte.
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            FrameError::Truncated { .. } => 0,
            FrameError::Oversized { .. } => 1,
            FrameError::BadMagic(_) => 2,
            FrameError::BadVersion(_) => 3,
            FrameError::BadFlags(_) => 4,
            FrameError::BadWidth(_) => 5,
            FrameError::CountMismatch { .. } => 6,
            FrameError::BadStatus(_) => 7,
            FrameError::PayloadMismatch { .. } => 8,
        }
    }

    /// Label for a wire code (the inverse of [`FrameError::code`] up to
    /// the lost detail fields).
    #[must_use]
    pub fn label_of_code(code: u8) -> &'static str {
        match code {
            0 => "truncated",
            1 => "oversized",
            2 => "bad_magic",
            3 => "bad_version",
            4 => "bad_flags",
            5 => "bad_width",
            6 => "count_mismatch",
            7 => "bad_status",
            8 => "payload_mismatch",
            _ => "unknown",
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, have } => {
                write!(f, "frame truncated: needs {needed} bytes, have {have}")
            }
            FrameError::Oversized { declared, limit } => {
                write!(f, "frame declares {declared} bytes (limit {limit})")
            }
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unknown protocol version {v}"),
            FrameError::BadFlags(bits) => write!(f, "unknown flag bits {bits:#010b}"),
            FrameError::BadWidth(w) => write!(f, "unsupported key width {w}"),
            FrameError::CountMismatch {
                declared,
                body_bytes,
            } => write!(
                f,
                "header declares {declared} keys but the body holds {body_bytes} key bytes"
            ),
            FrameError::BadStatus(s) => write!(f, "unknown reply status {s}"),
            FrameError::PayloadMismatch {
                declared,
                body_bytes,
            } => write!(
                f,
                "payload section declares {declared} bytes but holds {body_bytes}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded request frame: the wire-side twin of [`SortRequest`].
///
/// Keys are kept as raw little-endian bytes with their width so the
/// codec round-trips every supported width; [`RequestFrame::keys_u32`]
/// gives the typed view the current serving stack sorts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// Requested output order.
    pub dir: Direction,
    /// Bytes per key (must be in [`SUPPORTED_WIDTHS`]).
    pub width: u8,
    /// Per-request deadline in microseconds; 0 means server default.
    pub deadline_us: u64,
    /// Raw little-endian key bytes, length `count() * width`.
    pub key_bytes: Vec<u8>,
    /// Payload bytes per key; 0 means the frame carries no payload
    /// section and `payload` is empty.
    pub payload_stride: u32,
    /// Payload rows, `count() * payload_stride` bytes, row `i`
    /// belonging to key `i`.
    pub payload: Vec<u8>,
}

impl RequestFrame {
    fn from_key_bytes(
        width: u8,
        key_bytes: Vec<u8>,
        dir: Direction,
        deadline: Option<Duration>,
    ) -> Self {
        RequestFrame {
            dir,
            width,
            deadline_us: deadline.map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64),
            key_bytes,
            payload_stride: 0,
            payload: Vec::new(),
        }
    }

    /// A width-4 frame carrying `keys`.
    #[must_use]
    pub fn from_u32_keys(keys: &[u32], dir: Direction, deadline: Option<Duration>) -> Self {
        let key_bytes = keys.iter().flat_map(|k| k.to_le_bytes()).collect();
        Self::from_key_bytes(4, key_bytes, dir, deadline)
    }

    /// A width-8 frame carrying `keys`.
    #[must_use]
    pub fn from_u64_keys(keys: &[u64], dir: Direction, deadline: Option<Duration>) -> Self {
        let key_bytes = keys.iter().flat_map(|k| k.to_le_bytes()).collect();
        Self::from_key_bytes(8, key_bytes, dir, deadline)
    }

    /// A width-16 frame carrying `keys`.
    #[must_use]
    pub fn from_u128_keys(keys: &[u128], dir: Direction, deadline: Option<Duration>) -> Self {
        let key_bytes = keys.iter().flat_map(|k| k.to_le_bytes()).collect();
        Self::from_key_bytes(16, key_bytes, dir, deadline)
    }

    /// This frame with a payload section: `stride` bytes per key.
    ///
    /// # Panics
    /// Panics if `payload.len() != stride * count()`.
    #[must_use]
    pub fn with_payload(mut self, stride: u32, payload: Vec<u8>) -> Self {
        assert_eq!(
            payload.len(),
            stride as usize * self.count(),
            "payload must hold exactly stride bytes per key"
        );
        self.payload_stride = stride;
        self.payload = payload;
        self
    }

    /// Number of keys in the frame.
    #[must_use]
    pub fn count(&self) -> usize {
        self.key_bytes.len() / usize::from(self.width.max(1))
    }

    /// The keys as `u32`s, when the frame is width 4.
    #[must_use]
    pub fn keys_u32(&self) -> Option<Vec<u32>> {
        if self.width != 4 {
            return None;
        }
        Some(
            self.key_bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        )
    }

    /// The keys as `u64`s, when the frame is width 8.
    #[must_use]
    pub fn keys_u64(&self) -> Option<Vec<u64>> {
        if self.width != 8 {
            return None;
        }
        Some(
            self.key_bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect(),
        )
    }

    /// The keys as `u128`s, when the frame is width 16.
    #[must_use]
    pub fn keys_u128(&self) -> Option<Vec<u128>> {
        if self.width != 16 {
            return None;
        }
        Some(
            self.key_bytes
                .chunks_exact(16)
                .map(|c| u128::from_le_bytes(c.try_into().expect("16 bytes")))
                .collect(),
        )
    }

    /// The deadline this frame carries, `None` for "server default".
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        (self.deadline_us > 0).then(|| Duration::from_micros(self.deadline_us))
    }

    /// True when the frame must ride the record path: it is wider than
    /// the legacy `u32` format, or it carries a payload.
    #[must_use]
    pub fn is_record(&self) -> bool {
        self.width != 4 || self.payload_stride > 0
    }

    /// Convert into the service's [`SortRequest`] — the legacy plain
    /// path, width 4 and no payload.
    ///
    /// # Errors
    /// [`FrameError::BadWidth`] unless the frame is width 4;
    /// [`FrameError::PayloadMismatch`] when it carries a payload (a
    /// payload frame must convert via
    /// [`RequestFrame::into_record_request`]).
    pub fn into_request(self) -> Result<SortRequest, FrameError> {
        if self.payload_stride > 0 {
            return Err(FrameError::PayloadMismatch {
                declared: 0,
                body_bytes: self.payload.len(),
            });
        }
        let Some(keys) = self.keys_u32() else {
            return Err(FrameError::BadWidth(self.width));
        };
        Ok(SortRequest {
            keys,
            dir: self.dir,
            deadline: self.deadline(),
        })
    }

    /// Convert into the service's [`RecordRequest`]: widths 4, 8 and 16
    /// with an optional payload.
    ///
    /// # Errors
    /// [`FrameError::BadWidth`] for widths 1 and 2 — the codec
    /// round-trips them, but the serving stack does not sort them.
    ///
    /// # Panics
    /// Panics if the frame's payload length is not `stride * count()`
    /// (decoded frames always satisfy this; hand-built frames must use
    /// [`RequestFrame::with_payload`]).
    pub fn into_record_request(self) -> Result<RecordRequest, FrameError> {
        let keys = match self.width {
            4 => RecordKeys::U32(self.keys_u32().expect("width 4")),
            8 => RecordKeys::U64(self.keys_u64().expect("width 8")),
            16 => RecordKeys::U128(self.keys_u128().expect("width 16")),
            w => return Err(FrameError::BadWidth(w)),
        };
        let deadline = self.deadline();
        let request =
            RecordRequest::new(keys, self.payload, self.payload_stride as usize, self.dir);
        Ok(match deadline {
            Some(d) => request.with_deadline(d),
            None => request,
        })
    }

    /// Encode as a complete frame (length prefix included).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let has_payload = self.payload_stride > 0;
        let payload_section = if has_payload {
            4 + self.payload.len()
        } else {
            0
        };
        let total = REQUEST_HEADER + self.key_bytes.len() + payload_section;
        let mut out = Vec::with_capacity(LEN_PREFIX + total);
        out.extend_from_slice(&(total as u32).to_le_bytes());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        let mut flags = match self.dir {
            Direction::Ascending => 0,
            Direction::Descending => FLAG_DESCENDING,
        };
        if has_payload {
            flags |= FLAG_PAYLOAD;
        }
        out.push(flags);
        out.push(self.width);
        out.push(0); // reserved
        out.extend_from_slice(&self.deadline_us.to_le_bytes());
        out.extend_from_slice(&(self.count() as u32).to_le_bytes());
        out.extend_from_slice(&self.key_bytes);
        if has_payload {
            out.extend_from_slice(&self.payload_stride.to_le_bytes());
            out.extend_from_slice(&self.payload);
        }
        out
    }

    /// Decode a frame payload (everything after the length prefix).
    ///
    /// # Errors
    /// The [`FrameError`] naming the first malformation found.
    pub fn decode(payload: &[u8]) -> Result<RequestFrame, FrameError> {
        if payload.len() < REQUEST_HEADER {
            return Err(FrameError::Truncated {
                needed: REQUEST_HEADER,
                have: payload.len(),
            });
        }
        let magic: [u8; 4] = payload[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        if payload[4] != VERSION {
            return Err(FrameError::BadVersion(payload[4]));
        }
        let flags = payload[5];
        if flags & !FLAG_MASK != 0 {
            return Err(FrameError::BadFlags(flags));
        }
        let width = payload[6];
        if !SUPPORTED_WIDTHS.contains(&width) {
            return Err(FrameError::BadWidth(width));
        }
        let deadline_us = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes")) as usize;
        let body = &payload[REQUEST_HEADER..];
        let key_len = count * usize::from(width);
        let has_payload = flags & FLAG_PAYLOAD != 0;
        if !has_payload && body.len() != key_len {
            return Err(FrameError::CountMismatch {
                declared: count,
                body_bytes: body.len(),
            });
        }
        if has_payload && body.len() < key_len + 4 {
            // The keys (or the stride word itself) are cut short.
            return Err(FrameError::PayloadMismatch {
                declared: key_len + 4,
                body_bytes: body.len(),
            });
        }
        let (payload_stride, rows) = if has_payload {
            let stride =
                u32::from_le_bytes(body[key_len..key_len + 4].try_into().expect("4 bytes"));
            let rows = &body[key_len + 4..];
            if rows.len() != count * stride as usize {
                return Err(FrameError::PayloadMismatch {
                    declared: count * stride as usize,
                    body_bytes: rows.len(),
                });
            }
            (stride, rows.to_vec())
        } else {
            (0, Vec::new())
        };
        Ok(RequestFrame {
            dir: if flags & FLAG_DESCENDING != 0 {
                Direction::Descending
            } else {
                Direction::Ascending
            },
            width,
            deadline_us,
            key_bytes: body[..key_len].to_vec(),
            payload_stride,
            payload: rows,
        })
    }
}

/// Reply status codes on the wire.
mod status {
    pub const OK: u8 = 0;
    pub const CLOSED: u8 = 1;
    pub const TOO_LARGE: u8 = 2;
    pub const QUEUE_FULL: u8 = 3;
    pub const QUEUE_OVERFLOW: u8 = 4;
    pub const DEADLINE_UNMEETABLE: u8 = 5;
    pub const EXPIRED: u8 = 6;
    pub const MACHINE_FAILED: u8 = 7;
    pub const SERVICE_CLOSED: u8 = 8;
    pub const BAD_FRAME: u8 = 9;
    pub const BULK_FAILED: u8 = 10;
    pub const OK_RECORD: u8 = 11;
}

/// One reply frame: the request's outcome, structured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyFrame {
    /// The sorted keys, in the requested order.
    Sorted(Vec<u32>),
    /// Shed at admission; the [`Rejection`] survives the wire with its
    /// numeric fields and [`Rejection::label`] intact.
    Rejected(Rejection),
    /// Admitted but expired in the queue.
    Expired {
        /// How long the request waited, microseconds.
        waited_us: u64,
        /// The deadline it carried, microseconds.
        deadline_us: u64,
    },
    /// Admitted but its batch failed; the machine's failure message.
    Failed(String),
    /// The service shut down before answering.
    ServiceClosed,
    /// The request frame itself was malformed; carries the error's
    /// [`FrameError::code`]. Sent best-effort before disconnecting.
    BadFrame(u8),
    /// A bulk (over-band) request failed on one shard: the shard index
    /// and the rendered [`crate::BulkFailure`] reason. The connection
    /// stays open — a bulk failure is a structured reply, not a
    /// protocol error.
    BulkFailed {
        /// The shard whose sub-request sank the parent.
        shard: u64,
        /// Human-readable failure reason.
        reason: String,
    },
    /// A sorted record reply: keys in the requested order with payload
    /// row `i` attached to key `i`. The width byte carries the key
    /// width, `detail a` the key count, `detail b` the payload stride.
    Record {
        /// The sorted keys, at their wire width.
        keys: RecordKeys,
        /// Payload rows in key order, `keys.len() * stride` bytes.
        payload: Vec<u8>,
        /// Payload bytes per key.
        stride: u32,
    },
}

impl ReplyFrame {
    /// The reply that reports `err` for an admitted request.
    #[must_use]
    pub fn from_error(err: &SortError) -> Self {
        match err {
            SortError::Expired { waited, deadline } => ReplyFrame::Expired {
                waited_us: waited.as_micros().min(u128::from(u64::MAX)) as u64,
                deadline_us: deadline.as_micros().min(u128::from(u64::MAX)) as u64,
            },
            SortError::MachineFailed(msg) => ReplyFrame::Failed(msg.clone()),
            SortError::ServiceClosed => ReplyFrame::ServiceClosed,
            SortError::Bulk(failure) => ReplyFrame::BulkFailed {
                shard: failure.shard as u64,
                reason: failure.to_string(),
            },
        }
    }

    /// Stable label naming the reply class — `ok`, a
    /// [`Rejection::label`], `expired`, `machine_failed`,
    /// `service_closed`, or `bad_frame`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ReplyFrame::Sorted(_) => "ok",
            ReplyFrame::Rejected(r) => r.label(),
            ReplyFrame::Expired { .. } => "expired",
            ReplyFrame::Failed(_) => "machine_failed",
            ReplyFrame::ServiceClosed => "service_closed",
            ReplyFrame::BadFrame(_) => "bad_frame",
            ReplyFrame::BulkFailed { .. } => "bulk_failed",
            ReplyFrame::Record { .. } => "ok_record",
        }
    }

    fn status_and_details(&self) -> (u8, u64, u64) {
        match self {
            ReplyFrame::Sorted(keys) => (status::OK, keys.len() as u64, 0),
            ReplyFrame::Rejected(r) => match r {
                Rejection::Closed => (status::CLOSED, 0, 0),
                Rejection::TooLarge { keys, limit } => {
                    (status::TOO_LARGE, *keys as u64, *limit as u64)
                }
                Rejection::QueueFull { queued, limit } => {
                    (status::QUEUE_FULL, *queued as u64, *limit as u64)
                }
                Rejection::QueueOverflow { would_hold, limit } => {
                    (status::QUEUE_OVERFLOW, *would_hold as u64, *limit as u64)
                }
                Rejection::DeadlineUnmeetable {
                    predicted_wait,
                    deadline,
                } => (
                    status::DEADLINE_UNMEETABLE,
                    predicted_wait.as_micros().min(u128::from(u64::MAX)) as u64,
                    deadline.as_micros().min(u128::from(u64::MAX)) as u64,
                ),
            },
            ReplyFrame::Expired {
                waited_us,
                deadline_us,
            } => (status::EXPIRED, *waited_us, *deadline_us),
            ReplyFrame::Failed(msg) => (status::MACHINE_FAILED, msg.len() as u64, 0),
            ReplyFrame::ServiceClosed => (status::SERVICE_CLOSED, 0, 0),
            ReplyFrame::BadFrame(code) => (status::BAD_FRAME, u64::from(*code), 0),
            ReplyFrame::BulkFailed { shard, reason } => {
                (status::BULK_FAILED, *shard, reason.len() as u64)
            }
            ReplyFrame::Record { keys, stride, .. } => {
                (status::OK_RECORD, keys.len() as u64, u64::from(*stride))
            }
        }
    }

    /// Encode as a complete frame (length prefix included).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let (status, a, b) = self.status_and_details();
        let body: Vec<u8> = match self {
            ReplyFrame::Sorted(keys) => keys.iter().flat_map(|k| k.to_le_bytes()).collect(),
            ReplyFrame::Failed(msg) => msg.as_bytes().to_vec(),
            ReplyFrame::BulkFailed { reason, .. } => reason.as_bytes().to_vec(),
            ReplyFrame::Record { keys, payload, .. } => {
                let mut body: Vec<u8> = match keys {
                    RecordKeys::U32(k) => k.iter().flat_map(|k| k.to_le_bytes()).collect(),
                    RecordKeys::U64(k) => k.iter().flat_map(|k| k.to_le_bytes()).collect(),
                    RecordKeys::U128(k) => k.iter().flat_map(|k| k.to_le_bytes()).collect(),
                };
                body.extend_from_slice(payload);
                body
            }
            _ => Vec::new(),
        };
        let width = match self {
            ReplyFrame::Record { keys, .. } => keys.width(),
            _ => 4, // key width of a plain sorted body
        };
        let payload = REPLY_HEADER + body.len();
        let mut out = Vec::with_capacity(LEN_PREFIX + payload);
        out.extend_from_slice(&(payload as u32).to_le_bytes());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(status);
        out.push(width);
        out.push(0); // reserved
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode a reply payload (everything after the length prefix).
    ///
    /// # Errors
    /// The [`FrameError`] naming the first malformation found.
    pub fn decode(payload: &[u8]) -> Result<ReplyFrame, FrameError> {
        if payload.len() < REPLY_HEADER {
            return Err(FrameError::Truncated {
                needed: REPLY_HEADER,
                have: payload.len(),
            });
        }
        let magic: [u8; 4] = payload[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        if payload[4] != VERSION {
            return Err(FrameError::BadVersion(payload[4]));
        }
        let status_code = payload[5];
        let width = payload[6];
        let a = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        let b = u64::from_le_bytes(payload[16..24].try_into().expect("8 bytes"));
        let body = &payload[REPLY_HEADER..];
        Ok(match status_code {
            status::OK => {
                if width != 4 {
                    return Err(FrameError::BadWidth(width));
                }
                if body.len() != (a as usize) * 4 {
                    return Err(FrameError::CountMismatch {
                        declared: a as usize,
                        body_bytes: body.len(),
                    });
                }
                ReplyFrame::Sorted(
                    body.chunks_exact(4)
                        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect(),
                )
            }
            status::CLOSED => ReplyFrame::Rejected(Rejection::Closed),
            status::TOO_LARGE => ReplyFrame::Rejected(Rejection::TooLarge {
                keys: a as usize,
                limit: b as usize,
            }),
            status::QUEUE_FULL => ReplyFrame::Rejected(Rejection::QueueFull {
                queued: a as usize,
                limit: b as usize,
            }),
            status::QUEUE_OVERFLOW => ReplyFrame::Rejected(Rejection::QueueOverflow {
                would_hold: a as usize,
                limit: b as usize,
            }),
            status::DEADLINE_UNMEETABLE => ReplyFrame::Rejected(Rejection::DeadlineUnmeetable {
                predicted_wait: Duration::from_micros(a),
                deadline: Duration::from_micros(b),
            }),
            status::EXPIRED => ReplyFrame::Expired {
                waited_us: a,
                deadline_us: b,
            },
            status::MACHINE_FAILED => {
                if body.len() != a as usize {
                    return Err(FrameError::CountMismatch {
                        declared: a as usize,
                        body_bytes: body.len(),
                    });
                }
                ReplyFrame::Failed(String::from_utf8_lossy(body).into_owned())
            }
            status::SERVICE_CLOSED => ReplyFrame::ServiceClosed,
            status::BAD_FRAME => ReplyFrame::BadFrame(a.min(255) as u8),
            status::BULK_FAILED => {
                if body.len() != b as usize {
                    return Err(FrameError::CountMismatch {
                        declared: b as usize,
                        body_bytes: body.len(),
                    });
                }
                ReplyFrame::BulkFailed {
                    shard: a,
                    reason: String::from_utf8_lossy(body).into_owned(),
                }
            }
            status::OK_RECORD => {
                if !SORTABLE_WIDTHS.contains(&width) {
                    return Err(FrameError::BadWidth(width));
                }
                let count = a as usize;
                let stride = b as usize;
                let key_len = count * usize::from(width);
                if body.len() != key_len + count * stride {
                    return Err(FrameError::PayloadMismatch {
                        declared: key_len + count * stride,
                        body_bytes: body.len(),
                    });
                }
                let keys = match width {
                    4 => RecordKeys::U32(
                        body[..key_len]
                            .chunks_exact(4)
                            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                            .collect(),
                    ),
                    8 => RecordKeys::U64(
                        body[..key_len]
                            .chunks_exact(8)
                            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                            .collect(),
                    ),
                    _ => RecordKeys::U128(
                        body[..key_len]
                            .chunks_exact(16)
                            .map(|c| u128::from_le_bytes(c.try_into().expect("16 bytes")))
                            .collect(),
                    ),
                };
                ReplyFrame::Record {
                    keys,
                    payload: body[key_len..].to_vec(),
                    stride: b.min(u64::from(u32::MAX)) as u32,
                }
            }
            other => return Err(FrameError::BadStatus(other)),
        })
    }
}

/// Parse one text request line — the stdin frontend's format — into the
/// *same* [`RequestFrame`] the wire decoder produces, so both frontends
/// share one validation path (`bitonic-sort serve` delegates here).
///
/// Grammar: an optional leading `asc`/`desc` token, then any mix of
/// `deadline=<µs>`, `width=<1|2|4|8|16>` (default 4), and
/// `payload=<hex>` tokens, then decimal keys. Keys must fit the width;
/// the payload's byte length must divide evenly by the key count (the
/// quotient becomes the per-key stride).
///
/// # Errors
/// A description of the first malformed token.
pub fn parse_text_request(line: &str) -> Result<RequestFrame, String> {
    let mut dir = Direction::Ascending;
    let mut deadline_us = 0u64;
    let mut width = 4u8;
    let mut payload: Option<Vec<u8>> = None;
    let mut keys: Vec<u128> = Vec::new();
    for (i, tok) in line.split_whitespace().enumerate() {
        match tok {
            "asc" if i == 0 => dir = Direction::Ascending,
            "desc" if i == 0 => dir = Direction::Descending,
            _ => {
                if let Some(us) = tok.strip_prefix("deadline=") {
                    deadline_us = us
                        .parse::<u64>()
                        .map_err(|e| format!("bad deadline '{tok}': {e}"))?;
                } else if let Some(w) = tok.strip_prefix("width=") {
                    width = w
                        .parse::<u8>()
                        .ok()
                        .filter(|w| SUPPORTED_WIDTHS.contains(w))
                        .ok_or_else(|| format!("bad width '{tok}': must be 1, 2, 4, 8 or 16"))?;
                } else if let Some(hex) = tok.strip_prefix("payload=") {
                    payload =
                        Some(parse_hex(hex).map_err(|e| format!("bad payload '{tok}': {e}"))?);
                } else {
                    keys.push(
                        tok.parse::<u128>()
                            .map_err(|e| format!("bad key '{tok}': {e}"))?,
                    );
                }
            }
        }
    }
    let max = if width == 16 {
        u128::MAX
    } else {
        (1u128 << (8 * u32::from(width))) - 1
    };
    let mut key_bytes = Vec::with_capacity(keys.len() * usize::from(width));
    for k in &keys {
        if *k > max {
            return Err(format!("key {k} does not fit width {width}"));
        }
        key_bytes.extend_from_slice(&k.to_le_bytes()[..usize::from(width)]);
    }
    let mut frame = RequestFrame {
        dir,
        width,
        deadline_us,
        key_bytes,
        payload_stride: 0,
        payload: Vec::new(),
    };
    if let Some(rows) = payload {
        if keys.is_empty() {
            return Err("payload requires at least one key".into());
        }
        if rows.len() % keys.len() != 0 {
            return Err(format!(
                "payload length {} does not divide evenly over {} keys",
                rows.len(),
                keys.len()
            ));
        }
        let stride = (rows.len() / keys.len()) as u32;
        if stride > 0 {
            frame = frame.with_payload(stride, rows);
        }
    }
    // Round-trip through the codec so text requests pass the exact
    // validation wire requests do (single source of truth).
    let encoded = frame.encode();
    RequestFrame::decode(&encoded[LEN_PREFIX..]).map_err(|e| format!("invalid request: {e}"))
}

/// Decode a hex string (even length, `[0-9a-fA-F]`) into bytes.
fn parse_hex(hex: &str) -> Result<Vec<u8>, String> {
    if !hex.len().is_multiple_of(2) {
        return Err(format!("odd hex length {}", hex.len()));
    }
    let nibble = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            other => Err(format!("invalid hex digit '{}'", other as char)),
        }
    };
    hex.as_bytes()
        .chunks_exact(2)
        .map(|pair| Ok(nibble(pair[0])? << 4 | nibble(pair[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_all_fields() {
        let frame = RequestFrame::from_u32_keys(
            &[5, 1, u32::MAX, 0],
            Direction::Descending,
            Some(Duration::from_micros(1234)),
        );
        let bytes = frame.encode();
        assert_eq!(
            u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize,
            bytes.len() - LEN_PREFIX
        );
        let back = RequestFrame::decode(&bytes[LEN_PREFIX..]).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.keys_u32().unwrap(), vec![5, 1, u32::MAX, 0]);
        assert_eq!(back.deadline(), Some(Duration::from_micros(1234)));
    }

    #[test]
    fn empty_request_is_a_valid_frame() {
        let frame = RequestFrame::from_u32_keys(&[], Direction::Ascending, None);
        let bytes = frame.encode();
        let back = RequestFrame::decode(&bytes[LEN_PREFIX..]).unwrap();
        assert_eq!(back.count(), 0);
        assert_eq!(back.deadline(), None);
        assert!(back.into_request().unwrap().keys.is_empty());
    }

    #[test]
    fn malformed_requests_decode_to_structured_errors() {
        let good = RequestFrame::from_u32_keys(&[1, 2, 3], Direction::Ascending, None).encode();
        let payload = &good[LEN_PREFIX..];

        let mut bad_magic = payload.to_vec();
        bad_magic[0] = b'X';
        assert!(matches!(
            RequestFrame::decode(&bad_magic),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad_version = payload.to_vec();
        bad_version[4] = 9;
        assert_eq!(
            RequestFrame::decode(&bad_version),
            Err(FrameError::BadVersion(9))
        );

        let mut bad_flags = payload.to_vec();
        bad_flags[5] = 0b1000_0010;
        assert!(matches!(
            RequestFrame::decode(&bad_flags),
            Err(FrameError::BadFlags(_))
        ));

        let mut bad_width = payload.to_vec();
        bad_width[6] = 3;
        assert_eq!(
            RequestFrame::decode(&bad_width),
            Err(FrameError::BadWidth(3))
        );

        assert!(matches!(
            RequestFrame::decode(&payload[..REQUEST_HEADER - 1]),
            Err(FrameError::Truncated { .. })
        ));
        assert!(matches!(
            RequestFrame::decode(&payload[..payload.len() - 1]),
            Err(FrameError::CountMismatch { .. })
        ));
    }

    #[test]
    fn every_rejection_variant_round_trips_with_its_label() {
        let variants = [
            Rejection::Closed,
            Rejection::TooLarge {
                keys: 99,
                limit: 64,
            },
            Rejection::QueueFull {
                queued: 12,
                limit: 8,
            },
            Rejection::QueueOverflow {
                would_hold: 5000,
                limit: 4096,
            },
            Rejection::DeadlineUnmeetable {
                predicted_wait: Duration::from_micros(777),
                deadline: Duration::from_micros(5),
            },
        ];
        for r in variants {
            let reply = ReplyFrame::Rejected(r.clone());
            let bytes = reply.encode();
            let back = ReplyFrame::decode(&bytes[LEN_PREFIX..]).unwrap();
            assert_eq!(back, ReplyFrame::Rejected(r.clone()));
            assert_eq!(back.label(), r.label());
        }
    }

    #[test]
    fn sorted_failed_and_error_replies_round_trip() {
        for reply in [
            ReplyFrame::Sorted(vec![1, 2, 3, u32::MAX]),
            ReplyFrame::Sorted(vec![]),
            ReplyFrame::Expired {
                waited_us: 1000,
                deadline_us: 500,
            },
            ReplyFrame::Failed("rank 2 stalled".into()),
            ReplyFrame::ServiceClosed,
            ReplyFrame::BadFrame(FrameError::BadMagic(*b"nope").code()),
            ReplyFrame::BulkFailed {
                shard: 3,
                reason: "bulk partition on shard 3 was shed: queue full".into(),
            },
        ] {
            let bytes = reply.encode();
            let back = ReplyFrame::decode(&bytes[LEN_PREFIX..]).unwrap();
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn record_request_frames_round_trip_every_width_with_payload() {
        let payload: Vec<u8> = (0u8..12).collect();
        for frame in [
            RequestFrame::from_u32_keys(&[7, 1, 9], Direction::Ascending, None)
                .with_payload(4, payload.clone()),
            RequestFrame::from_u64_keys(&[u64::MAX, 0, 5], Direction::Descending, None)
                .with_payload(4, payload.clone()),
            RequestFrame::from_u128_keys(&[1 << 90, 2, 3], Direction::Ascending, None)
                .with_payload(4, payload.clone()),
            RequestFrame::from_u64_keys(&[1, 2], Direction::Ascending, None),
        ] {
            let bytes = frame.encode();
            let back = RequestFrame::decode(&bytes[LEN_PREFIX..]).unwrap();
            assert_eq!(back, frame);
        }
        let frame = RequestFrame::from_u64_keys(&[9, 2], Direction::Descending, None)
            .with_payload(2, vec![1, 2, 3, 4]);
        let req = frame.into_record_request().unwrap();
        assert_eq!(req.stride, 2);
        assert_eq!(req.payload, vec![1, 2, 3, 4]);
        assert_eq!(req.dir, Direction::Descending);
    }

    #[test]
    fn narrow_widths_decode_but_are_refused_as_record_requests() {
        for width in [1u8, 2] {
            let frame = RequestFrame {
                dir: Direction::Ascending,
                width,
                deadline_us: 0,
                key_bytes: vec![0; usize::from(width) * 3],
                payload_stride: 0,
                payload: Vec::new(),
            };
            let back = RequestFrame::decode(&frame.encode()[LEN_PREFIX..]).unwrap();
            assert!(back.is_record());
            assert_eq!(
                back.into_record_request().unwrap_err(),
                FrameError::BadWidth(width)
            );
        }
    }

    #[test]
    fn malformed_payload_sections_decode_to_structured_errors() {
        let good = RequestFrame::from_u32_keys(&[1, 2], Direction::Ascending, None)
            .with_payload(3, vec![9; 6])
            .encode();
        let payload = &good[LEN_PREFIX..];

        // Truncated mid-payload: the row bytes fall short of count*stride.
        assert!(matches!(
            RequestFrame::decode(&payload[..payload.len() - 2]),
            Err(FrameError::PayloadMismatch { .. })
        ));
        // Truncated before the stride word completes.
        assert!(matches!(
            RequestFrame::decode(&payload[..REQUEST_HEADER + 8 + 2]),
            Err(FrameError::PayloadMismatch { .. })
        ));
        // Stride word inflated: declared bytes exceed what is present.
        let mut inflated = payload.to_vec();
        inflated[REQUEST_HEADER + 8] = 200;
        assert_eq!(
            RequestFrame::decode(&inflated),
            Err(FrameError::PayloadMismatch {
                declared: 400,
                body_bytes: 6,
            })
        );
        assert_eq!(
            FrameError::PayloadMismatch {
                declared: 400,
                body_bytes: 6
            }
            .label(),
            "payload_mismatch"
        );
        // A payload frame cannot ride the legacy plain conversion.
        let frame = RequestFrame::decode(payload).unwrap();
        assert!(frame.into_request().is_err());
    }

    #[test]
    fn record_replies_round_trip_for_every_width() {
        for keys in [
            RecordKeys::U32(vec![1, 2, 3]),
            RecordKeys::U64(vec![u64::MAX, 0, 7]),
            RecordKeys::U128(vec![1 << 100, 1, 2]),
        ] {
            let reply = ReplyFrame::Record {
                keys,
                payload: vec![5, 6, 7, 8, 9, 10],
                stride: 2,
            };
            let bytes = reply.encode();
            let back = ReplyFrame::decode(&bytes[LEN_PREFIX..]).unwrap();
            assert_eq!(back, reply);
            assert_eq!(back.label(), "ok_record");
        }
        // Empty record reply (n=0) is valid too.
        let reply = ReplyFrame::Record {
            keys: RecordKeys::U64(vec![]),
            payload: vec![],
            stride: 16,
        };
        let back = ReplyFrame::decode(&reply.encode()[LEN_PREFIX..]).unwrap();
        assert_eq!(back, reply);
    }

    #[test]
    fn text_parsing_accepts_width_and_payload_tokens() {
        let frame = parse_text_request("desc width=8 payload=0a0b0c0d 300 100").unwrap();
        assert_eq!(frame.width, 8);
        assert_eq!(frame.keys_u64().unwrap(), vec![300, 100]);
        assert_eq!(frame.payload_stride, 2);
        assert_eq!(frame.payload, vec![0x0a, 0x0b, 0x0c, 0x0d]);

        let frame = parse_text_request("width=16 340282366920938463463374607431768211455").unwrap();
        assert_eq!(frame.keys_u128().unwrap(), vec![u128::MAX]);

        // Keys must fit the width; payload must divide evenly; hex must
        // be well-formed.
        assert!(parse_text_request("width=4 4294967296").is_err());
        assert!(parse_text_request("width=3 1 2").is_err());
        assert!(parse_text_request("payload=abcd 1 2 3").is_err());
        assert!(parse_text_request("payload=xyz 1").is_err());
        assert!(parse_text_request("payload=abc 1").is_err());
        assert!(parse_text_request("payload=ab").is_err());
        // width=1/2 parse (the codec supports them) — conversion refuses.
        let frame = parse_text_request("width=2 9 4").unwrap();
        assert_eq!(
            frame.into_record_request().unwrap_err(),
            FrameError::BadWidth(2)
        );
    }

    #[test]
    fn text_parsing_shares_the_wire_validation_path() {
        let frame = parse_text_request("desc 9 3 7").unwrap();
        assert_eq!(frame.dir, Direction::Descending);
        assert_eq!(frame.keys_u32().unwrap(), vec![9, 3, 7]);
        let frame = parse_text_request("deadline=250 1 2").unwrap();
        assert_eq!(frame.deadline(), Some(Duration::from_micros(250)));
        assert!(parse_text_request("1 2 nope").is_err());
        assert!(parse_text_request("deadline=abc 1").is_err());
        // A mid-line 'asc' is a malformed key, exactly as before.
        assert!(parse_text_request("1 asc 2").is_err());
    }
}
