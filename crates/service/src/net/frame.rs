//! The `SORT_1` wire format: length-prefixed binary frames.
//!
//! Every frame on the wire — request or reply — is a 4-byte
//! little-endian length prefix (the byte count of everything after it)
//! followed by a fixed header and a payload:
//!
//! ```text
//! request                              reply
//! ┌────────────┬──────────────┐       ┌────────────┬──────────────┐
//! │ u32 length │ 20-byte head │       │ u32 length │ 16-byte head │
//! ├────────────┴──────────────┤       ├────────────┴──────────────┤
//! │ magic  "SRT1"  (4 bytes)  │       │ magic  "SRT1"  (4 bytes)  │
//! │ version   1    (u8)       │       │ version   1    (u8)       │
//! │ flags          (u8)       │       │ status         (u8)       │
//! │ key width      (u8)       │       │ key width      (u8)       │
//! │ reserved  0    (u8)       │       │ reserved  0    (u8)       │
//! │ deadline µs    (u64 LE)   │       │ detail a       (u64 LE)   │
//! │ key count      (u32 LE)   │       │ detail b       (u64 LE)   │
//! │ keys  count×width bytes   │       │ body (keys or message)    │
//! └───────────────────────────┘       └───────────────────────────┘
//! ```
//!
//! Flags bit 0 selects the sort direction (0 ascending, 1 descending);
//! all other bits must be zero. A deadline of 0 means "server default".
//! The codec accepts any key width in [`SUPPORTED_WIDTHS`] so the frame
//! layout is ready for the wide-key roadmap item; the serving stack
//! itself currently sorts `u32` keys, so the server requires width 4 and
//! answers anything else with a structured [`FrameError::BadWidth`].
//!
//! Decoding never panics: every malformed input — short buffer, bad
//! magic, unknown version, ragged key bytes, oversized declaration —
//! maps to a [`FrameError`] that the server echoes on the wire (status
//! `bad_frame`) before closing the connection.
//!
//! Reply status codes are [`ReplyFrame`] variants: `0` carries sorted
//! keys; `1..=5` are the admission [`Rejection`] reasons with the
//! variant's two numeric fields in `detail a`/`detail b`; `6`..`8` are
//! the post-admission [`crate::SortError`] outcomes; `9` echoes a
//! [`FrameError`]; `10` is a structured bulk-sort failure (`detail a`
//! names the shard that sank the request, the body carries the
//! reason). Labels round-trip exactly so wire-side shed counters
//! reconcile against the registry's per-reason counters.

use crate::admission::Rejection;
use crate::server::{SortError, SortRequest};
use bitonic_network::Direction;
use std::time::Duration;

/// Frame magic: the first four payload bytes of every `SORT_1` frame.
pub const MAGIC: [u8; 4] = *b"SRT1";

/// Protocol version this build speaks.
pub const VERSION: u8 = 1;

/// Request header length in bytes (after the length prefix).
pub const REQUEST_HEADER: usize = 20;

/// Reply header length in bytes (after the length prefix).
pub const REPLY_HEADER: usize = 24;

/// Length-prefix size in bytes.
pub const LEN_PREFIX: usize = 4;

/// Key widths (bytes per key) the codec round-trips. The server
/// additionally requires width 4 (`u32` keys) until the wide-key
/// roadmap item lands end to end.
pub const SUPPORTED_WIDTHS: [u8; 5] = [1, 2, 4, 8, 16];

/// Flags bit 0: descending order requested.
const FLAG_DESCENDING: u8 = 0b0000_0001;
/// All bits a version-1 frame may set.
const FLAG_MASK: u8 = FLAG_DESCENDING;

/// Why a frame failed to decode. Structured — the server sends the
/// label back on the wire before disconnecting, and tests assert the
/// exact reason, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the declared frame does.
    Truncated {
        /// Bytes the frame declared (or the header needs).
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The declared frame length exceeds the receiver's limit.
    Oversized {
        /// Bytes the frame declared.
        declared: usize,
        /// The receiver's frame-size limit.
        limit: usize,
    },
    /// The first four payload bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Flag bits outside the version-1 mask are set.
    BadFlags(u8),
    /// The key width is not in [`SUPPORTED_WIDTHS`] (or, at the server,
    /// not the width the serving stack sorts).
    BadWidth(u8),
    /// The body length does not equal `count * width`.
    CountMismatch {
        /// Keys the header declared.
        declared: usize,
        /// Key bytes actually present in the body.
        body_bytes: usize,
    },
    /// A reply carried an unknown status code.
    BadStatus(u8),
}

impl FrameError {
    /// Stable label naming the error class — the `reason` label on the
    /// `bitonic_wire_frame_errors_total` metric and the detail code
    /// echoed in a `bad_frame` reply.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FrameError::Truncated { .. } => "truncated",
            FrameError::Oversized { .. } => "oversized",
            FrameError::BadMagic(_) => "bad_magic",
            FrameError::BadVersion(_) => "bad_version",
            FrameError::BadFlags(_) => "bad_flags",
            FrameError::BadWidth(_) => "bad_width",
            FrameError::CountMismatch { .. } => "count_mismatch",
            FrameError::BadStatus(_) => "bad_status",
        }
    }

    /// Wire code for the `bad_frame` reply detail byte.
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            FrameError::Truncated { .. } => 0,
            FrameError::Oversized { .. } => 1,
            FrameError::BadMagic(_) => 2,
            FrameError::BadVersion(_) => 3,
            FrameError::BadFlags(_) => 4,
            FrameError::BadWidth(_) => 5,
            FrameError::CountMismatch { .. } => 6,
            FrameError::BadStatus(_) => 7,
        }
    }

    /// Label for a wire code (the inverse of [`FrameError::code`] up to
    /// the lost detail fields).
    #[must_use]
    pub fn label_of_code(code: u8) -> &'static str {
        match code {
            0 => "truncated",
            1 => "oversized",
            2 => "bad_magic",
            3 => "bad_version",
            4 => "bad_flags",
            5 => "bad_width",
            6 => "count_mismatch",
            7 => "bad_status",
            _ => "unknown",
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, have } => {
                write!(f, "frame truncated: needs {needed} bytes, have {have}")
            }
            FrameError::Oversized { declared, limit } => {
                write!(f, "frame declares {declared} bytes (limit {limit})")
            }
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unknown protocol version {v}"),
            FrameError::BadFlags(bits) => write!(f, "unknown flag bits {bits:#010b}"),
            FrameError::BadWidth(w) => write!(f, "unsupported key width {w}"),
            FrameError::CountMismatch {
                declared,
                body_bytes,
            } => write!(
                f,
                "header declares {declared} keys but the body holds {body_bytes} key bytes"
            ),
            FrameError::BadStatus(s) => write!(f, "unknown reply status {s}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One decoded request frame: the wire-side twin of [`SortRequest`].
///
/// Keys are kept as raw little-endian bytes with their width so the
/// codec round-trips every supported width; [`RequestFrame::keys_u32`]
/// gives the typed view the current serving stack sorts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// Requested output order.
    pub dir: Direction,
    /// Bytes per key (must be in [`SUPPORTED_WIDTHS`]).
    pub width: u8,
    /// Per-request deadline in microseconds; 0 means server default.
    pub deadline_us: u64,
    /// Raw little-endian key bytes, length `count() * width`.
    pub key_bytes: Vec<u8>,
}

impl RequestFrame {
    /// A width-4 frame carrying `keys`.
    #[must_use]
    pub fn from_u32_keys(keys: &[u32], dir: Direction, deadline: Option<Duration>) -> Self {
        let mut key_bytes = Vec::with_capacity(keys.len() * 4);
        for k in keys {
            key_bytes.extend_from_slice(&k.to_le_bytes());
        }
        RequestFrame {
            dir,
            width: 4,
            deadline_us: deadline.map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64),
            key_bytes,
        }
    }

    /// Number of keys in the frame.
    #[must_use]
    pub fn count(&self) -> usize {
        self.key_bytes.len() / usize::from(self.width.max(1))
    }

    /// The keys as `u32`s, when the frame is width 4.
    #[must_use]
    pub fn keys_u32(&self) -> Option<Vec<u32>> {
        if self.width != 4 {
            return None;
        }
        Some(
            self.key_bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        )
    }

    /// The deadline this frame carries, `None` for "server default".
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        (self.deadline_us > 0).then(|| Duration::from_micros(self.deadline_us))
    }

    /// Convert into the service's [`SortRequest`].
    ///
    /// # Errors
    /// [`FrameError::BadWidth`] unless the frame is width 4 — the only
    /// width the serving stack currently sorts.
    pub fn into_request(self) -> Result<SortRequest, FrameError> {
        let Some(keys) = self.keys_u32() else {
            return Err(FrameError::BadWidth(self.width));
        };
        Ok(SortRequest {
            keys,
            dir: self.dir,
            deadline: self.deadline(),
        })
    }

    /// Encode as a complete frame (length prefix included).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let payload = REQUEST_HEADER + self.key_bytes.len();
        let mut out = Vec::with_capacity(LEN_PREFIX + payload);
        out.extend_from_slice(&(payload as u32).to_le_bytes());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(match self.dir {
            Direction::Ascending => 0,
            Direction::Descending => FLAG_DESCENDING,
        });
        out.push(self.width);
        out.push(0); // reserved
        out.extend_from_slice(&self.deadline_us.to_le_bytes());
        out.extend_from_slice(&(self.count() as u32).to_le_bytes());
        out.extend_from_slice(&self.key_bytes);
        out
    }

    /// Decode a frame payload (everything after the length prefix).
    ///
    /// # Errors
    /// The [`FrameError`] naming the first malformation found.
    pub fn decode(payload: &[u8]) -> Result<RequestFrame, FrameError> {
        if payload.len() < REQUEST_HEADER {
            return Err(FrameError::Truncated {
                needed: REQUEST_HEADER,
                have: payload.len(),
            });
        }
        let magic: [u8; 4] = payload[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        if payload[4] != VERSION {
            return Err(FrameError::BadVersion(payload[4]));
        }
        let flags = payload[5];
        if flags & !FLAG_MASK != 0 {
            return Err(FrameError::BadFlags(flags));
        }
        let width = payload[6];
        if !SUPPORTED_WIDTHS.contains(&width) {
            return Err(FrameError::BadWidth(width));
        }
        let deadline_us = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes")) as usize;
        let body = &payload[REQUEST_HEADER..];
        if body.len() != count * usize::from(width) {
            return Err(FrameError::CountMismatch {
                declared: count,
                body_bytes: body.len(),
            });
        }
        Ok(RequestFrame {
            dir: if flags & FLAG_DESCENDING != 0 {
                Direction::Descending
            } else {
                Direction::Ascending
            },
            width,
            deadline_us,
            key_bytes: body.to_vec(),
        })
    }
}

/// Reply status codes on the wire.
mod status {
    pub const OK: u8 = 0;
    pub const CLOSED: u8 = 1;
    pub const TOO_LARGE: u8 = 2;
    pub const QUEUE_FULL: u8 = 3;
    pub const QUEUE_OVERFLOW: u8 = 4;
    pub const DEADLINE_UNMEETABLE: u8 = 5;
    pub const EXPIRED: u8 = 6;
    pub const MACHINE_FAILED: u8 = 7;
    pub const SERVICE_CLOSED: u8 = 8;
    pub const BAD_FRAME: u8 = 9;
    pub const BULK_FAILED: u8 = 10;
}

/// One reply frame: the request's outcome, structured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyFrame {
    /// The sorted keys, in the requested order.
    Sorted(Vec<u32>),
    /// Shed at admission; the [`Rejection`] survives the wire with its
    /// numeric fields and [`Rejection::label`] intact.
    Rejected(Rejection),
    /// Admitted but expired in the queue.
    Expired {
        /// How long the request waited, microseconds.
        waited_us: u64,
        /// The deadline it carried, microseconds.
        deadline_us: u64,
    },
    /// Admitted but its batch failed; the machine's failure message.
    Failed(String),
    /// The service shut down before answering.
    ServiceClosed,
    /// The request frame itself was malformed; carries the error's
    /// [`FrameError::code`]. Sent best-effort before disconnecting.
    BadFrame(u8),
    /// A bulk (over-band) request failed on one shard: the shard index
    /// and the rendered [`crate::BulkFailure`] reason. The connection
    /// stays open — a bulk failure is a structured reply, not a
    /// protocol error.
    BulkFailed {
        /// The shard whose sub-request sank the parent.
        shard: u64,
        /// Human-readable failure reason.
        reason: String,
    },
}

impl ReplyFrame {
    /// The reply that reports `err` for an admitted request.
    #[must_use]
    pub fn from_error(err: &SortError) -> Self {
        match err {
            SortError::Expired { waited, deadline } => ReplyFrame::Expired {
                waited_us: waited.as_micros().min(u128::from(u64::MAX)) as u64,
                deadline_us: deadline.as_micros().min(u128::from(u64::MAX)) as u64,
            },
            SortError::MachineFailed(msg) => ReplyFrame::Failed(msg.clone()),
            SortError::ServiceClosed => ReplyFrame::ServiceClosed,
            SortError::Bulk(failure) => ReplyFrame::BulkFailed {
                shard: failure.shard as u64,
                reason: failure.to_string(),
            },
        }
    }

    /// Stable label naming the reply class — `ok`, a
    /// [`Rejection::label`], `expired`, `machine_failed`,
    /// `service_closed`, or `bad_frame`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ReplyFrame::Sorted(_) => "ok",
            ReplyFrame::Rejected(r) => r.label(),
            ReplyFrame::Expired { .. } => "expired",
            ReplyFrame::Failed(_) => "machine_failed",
            ReplyFrame::ServiceClosed => "service_closed",
            ReplyFrame::BadFrame(_) => "bad_frame",
            ReplyFrame::BulkFailed { .. } => "bulk_failed",
        }
    }

    fn status_and_details(&self) -> (u8, u64, u64) {
        match self {
            ReplyFrame::Sorted(keys) => (status::OK, keys.len() as u64, 0),
            ReplyFrame::Rejected(r) => match r {
                Rejection::Closed => (status::CLOSED, 0, 0),
                Rejection::TooLarge { keys, limit } => {
                    (status::TOO_LARGE, *keys as u64, *limit as u64)
                }
                Rejection::QueueFull { queued, limit } => {
                    (status::QUEUE_FULL, *queued as u64, *limit as u64)
                }
                Rejection::QueueOverflow { would_hold, limit } => {
                    (status::QUEUE_OVERFLOW, *would_hold as u64, *limit as u64)
                }
                Rejection::DeadlineUnmeetable {
                    predicted_wait,
                    deadline,
                } => (
                    status::DEADLINE_UNMEETABLE,
                    predicted_wait.as_micros().min(u128::from(u64::MAX)) as u64,
                    deadline.as_micros().min(u128::from(u64::MAX)) as u64,
                ),
            },
            ReplyFrame::Expired {
                waited_us,
                deadline_us,
            } => (status::EXPIRED, *waited_us, *deadline_us),
            ReplyFrame::Failed(msg) => (status::MACHINE_FAILED, msg.len() as u64, 0),
            ReplyFrame::ServiceClosed => (status::SERVICE_CLOSED, 0, 0),
            ReplyFrame::BadFrame(code) => (status::BAD_FRAME, u64::from(*code), 0),
            ReplyFrame::BulkFailed { shard, reason } => {
                (status::BULK_FAILED, *shard, reason.len() as u64)
            }
        }
    }

    /// Encode as a complete frame (length prefix included).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let (status, a, b) = self.status_and_details();
        let body: Vec<u8> = match self {
            ReplyFrame::Sorted(keys) => keys.iter().flat_map(|k| k.to_le_bytes()).collect(),
            ReplyFrame::Failed(msg) => msg.as_bytes().to_vec(),
            ReplyFrame::BulkFailed { reason, .. } => reason.as_bytes().to_vec(),
            _ => Vec::new(),
        };
        let payload = REPLY_HEADER + body.len();
        let mut out = Vec::with_capacity(LEN_PREFIX + payload);
        out.extend_from_slice(&(payload as u32).to_le_bytes());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(status);
        out.push(4); // key width of the sorted body
        out.push(0); // reserved
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode a reply payload (everything after the length prefix).
    ///
    /// # Errors
    /// The [`FrameError`] naming the first malformation found.
    pub fn decode(payload: &[u8]) -> Result<ReplyFrame, FrameError> {
        if payload.len() < REPLY_HEADER {
            return Err(FrameError::Truncated {
                needed: REPLY_HEADER,
                have: payload.len(),
            });
        }
        let magic: [u8; 4] = payload[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        if payload[4] != VERSION {
            return Err(FrameError::BadVersion(payload[4]));
        }
        let status_code = payload[5];
        let width = payload[6];
        let a = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        let b = u64::from_le_bytes(payload[16..24].try_into().expect("8 bytes"));
        let body = &payload[REPLY_HEADER..];
        Ok(match status_code {
            status::OK => {
                if width != 4 {
                    return Err(FrameError::BadWidth(width));
                }
                if body.len() != (a as usize) * 4 {
                    return Err(FrameError::CountMismatch {
                        declared: a as usize,
                        body_bytes: body.len(),
                    });
                }
                ReplyFrame::Sorted(
                    body.chunks_exact(4)
                        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect(),
                )
            }
            status::CLOSED => ReplyFrame::Rejected(Rejection::Closed),
            status::TOO_LARGE => ReplyFrame::Rejected(Rejection::TooLarge {
                keys: a as usize,
                limit: b as usize,
            }),
            status::QUEUE_FULL => ReplyFrame::Rejected(Rejection::QueueFull {
                queued: a as usize,
                limit: b as usize,
            }),
            status::QUEUE_OVERFLOW => ReplyFrame::Rejected(Rejection::QueueOverflow {
                would_hold: a as usize,
                limit: b as usize,
            }),
            status::DEADLINE_UNMEETABLE => ReplyFrame::Rejected(Rejection::DeadlineUnmeetable {
                predicted_wait: Duration::from_micros(a),
                deadline: Duration::from_micros(b),
            }),
            status::EXPIRED => ReplyFrame::Expired {
                waited_us: a,
                deadline_us: b,
            },
            status::MACHINE_FAILED => {
                if body.len() != a as usize {
                    return Err(FrameError::CountMismatch {
                        declared: a as usize,
                        body_bytes: body.len(),
                    });
                }
                ReplyFrame::Failed(String::from_utf8_lossy(body).into_owned())
            }
            status::SERVICE_CLOSED => ReplyFrame::ServiceClosed,
            status::BAD_FRAME => ReplyFrame::BadFrame(a.min(255) as u8),
            status::BULK_FAILED => {
                if body.len() != b as usize {
                    return Err(FrameError::CountMismatch {
                        declared: b as usize,
                        body_bytes: body.len(),
                    });
                }
                ReplyFrame::BulkFailed {
                    shard: a,
                    reason: String::from_utf8_lossy(body).into_owned(),
                }
            }
            other => return Err(FrameError::BadStatus(other)),
        })
    }
}

/// Parse one text request line — the stdin frontend's format — into the
/// *same* [`RequestFrame`] the wire decoder produces, so both frontends
/// share one validation path (`bitonic-sort serve` delegates here).
///
/// Grammar: an optional leading `asc`/`desc` token, an optional
/// `deadline=<µs>` token, then decimal keys.
///
/// # Errors
/// A description of the first malformed token.
pub fn parse_text_request(line: &str) -> Result<RequestFrame, String> {
    let mut dir = Direction::Ascending;
    let mut deadline_us = 0u64;
    let mut keys: Vec<u32> = Vec::new();
    for (i, tok) in line.split_whitespace().enumerate() {
        match tok {
            "asc" if i == 0 => dir = Direction::Ascending,
            "desc" if i == 0 => dir = Direction::Descending,
            _ => {
                if let Some(us) = tok.strip_prefix("deadline=") {
                    deadline_us = us
                        .parse::<u64>()
                        .map_err(|e| format!("bad deadline '{tok}': {e}"))?;
                } else {
                    keys.push(
                        tok.parse::<u32>()
                            .map_err(|e| format!("bad key '{tok}': {e}"))?,
                    );
                }
            }
        }
    }
    let mut frame = RequestFrame::from_u32_keys(&keys, dir, None);
    frame.deadline_us = deadline_us;
    // Round-trip through the codec so text requests pass the exact
    // validation wire requests do (single source of truth).
    let encoded = frame.encode();
    RequestFrame::decode(&encoded[LEN_PREFIX..]).map_err(|e| format!("invalid request: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_all_fields() {
        let frame = RequestFrame::from_u32_keys(
            &[5, 1, u32::MAX, 0],
            Direction::Descending,
            Some(Duration::from_micros(1234)),
        );
        let bytes = frame.encode();
        assert_eq!(
            u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize,
            bytes.len() - LEN_PREFIX
        );
        let back = RequestFrame::decode(&bytes[LEN_PREFIX..]).unwrap();
        assert_eq!(back, frame);
        assert_eq!(back.keys_u32().unwrap(), vec![5, 1, u32::MAX, 0]);
        assert_eq!(back.deadline(), Some(Duration::from_micros(1234)));
    }

    #[test]
    fn empty_request_is_a_valid_frame() {
        let frame = RequestFrame::from_u32_keys(&[], Direction::Ascending, None);
        let bytes = frame.encode();
        let back = RequestFrame::decode(&bytes[LEN_PREFIX..]).unwrap();
        assert_eq!(back.count(), 0);
        assert_eq!(back.deadline(), None);
        assert!(back.into_request().unwrap().keys.is_empty());
    }

    #[test]
    fn malformed_requests_decode_to_structured_errors() {
        let good = RequestFrame::from_u32_keys(&[1, 2, 3], Direction::Ascending, None).encode();
        let payload = &good[LEN_PREFIX..];

        let mut bad_magic = payload.to_vec();
        bad_magic[0] = b'X';
        assert!(matches!(
            RequestFrame::decode(&bad_magic),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad_version = payload.to_vec();
        bad_version[4] = 9;
        assert_eq!(
            RequestFrame::decode(&bad_version),
            Err(FrameError::BadVersion(9))
        );

        let mut bad_flags = payload.to_vec();
        bad_flags[5] = 0b1000_0010;
        assert!(matches!(
            RequestFrame::decode(&bad_flags),
            Err(FrameError::BadFlags(_))
        ));

        let mut bad_width = payload.to_vec();
        bad_width[6] = 3;
        assert_eq!(
            RequestFrame::decode(&bad_width),
            Err(FrameError::BadWidth(3))
        );

        assert!(matches!(
            RequestFrame::decode(&payload[..REQUEST_HEADER - 1]),
            Err(FrameError::Truncated { .. })
        ));
        assert!(matches!(
            RequestFrame::decode(&payload[..payload.len() - 1]),
            Err(FrameError::CountMismatch { .. })
        ));
    }

    #[test]
    fn every_rejection_variant_round_trips_with_its_label() {
        let variants = [
            Rejection::Closed,
            Rejection::TooLarge {
                keys: 99,
                limit: 64,
            },
            Rejection::QueueFull {
                queued: 12,
                limit: 8,
            },
            Rejection::QueueOverflow {
                would_hold: 5000,
                limit: 4096,
            },
            Rejection::DeadlineUnmeetable {
                predicted_wait: Duration::from_micros(777),
                deadline: Duration::from_micros(5),
            },
        ];
        for r in variants {
            let reply = ReplyFrame::Rejected(r.clone());
            let bytes = reply.encode();
            let back = ReplyFrame::decode(&bytes[LEN_PREFIX..]).unwrap();
            assert_eq!(back, ReplyFrame::Rejected(r.clone()));
            assert_eq!(back.label(), r.label());
        }
    }

    #[test]
    fn sorted_failed_and_error_replies_round_trip() {
        for reply in [
            ReplyFrame::Sorted(vec![1, 2, 3, u32::MAX]),
            ReplyFrame::Sorted(vec![]),
            ReplyFrame::Expired {
                waited_us: 1000,
                deadline_us: 500,
            },
            ReplyFrame::Failed("rank 2 stalled".into()),
            ReplyFrame::ServiceClosed,
            ReplyFrame::BadFrame(FrameError::BadMagic(*b"nope").code()),
            ReplyFrame::BulkFailed {
                shard: 3,
                reason: "bulk partition on shard 3 was shed: queue full".into(),
            },
        ] {
            let bytes = reply.encode();
            let back = ReplyFrame::decode(&bytes[LEN_PREFIX..]).unwrap();
            assert_eq!(back, reply);
        }
    }

    #[test]
    fn text_parsing_shares_the_wire_validation_path() {
        let frame = parse_text_request("desc 9 3 7").unwrap();
        assert_eq!(frame.dir, Direction::Descending);
        assert_eq!(frame.keys_u32().unwrap(), vec![9, 3, 7]);
        let frame = parse_text_request("deadline=250 1 2").unwrap();
        assert_eq!(frame.deadline(), Some(Duration::from_micros(250)));
        assert!(parse_text_request("1 2 nope").is_err());
        assert!(parse_text_request("deadline=abc 1").is_err());
        // A mid-line 'asc' is a malformed key, exactly as before.
        assert!(parse_text_request("1 asc 2").is_err());
    }
}
