//! A small blocking `SORT_1` client for loopback load tests and the
//! conformance suite.
//!
//! [`WireClient`] speaks one request/reply exchange at a time over one
//! `TcpStream` — exactly the discipline the server's per-connection
//! handler assumes. The raw [`WireClient::send_raw`] escape hatch lets
//! tests put arbitrary bytes on the wire (malformed frames, partial
//! frames) while still decoding whatever the server answers.

use crate::net::frame::{FrameError, ReplyFrame, RequestFrame, LEN_PREFIX};
use bitonic_network::Direction;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Largest reply payload the client will accept (a sorted reply to the
/// largest request the server admits is far below this).
const MAX_REPLY_BYTES: usize = 1 << 26;

/// Why a client call failed.
#[derive(Debug)]
pub enum WireError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// The server's reply did not decode.
    Frame(FrameError),
    /// The connection ended before a full reply arrived.
    Disconnected,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Frame(e) => write!(f, "bad reply frame: {e}"),
            WireError::Disconnected => write!(f, "server disconnected mid-reply"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Disconnected
        } else {
            WireError::Io(e)
        }
    }
}

/// One blocking `SORT_1` connection.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
}

impl WireClient {
    /// Connect to a `SORT_1` server.
    ///
    /// # Errors
    /// The connect error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(WireClient { stream })
    }

    /// Wrap an already-connected stream.
    #[must_use]
    pub fn from_stream(stream: TcpStream) -> Self {
        WireClient { stream }
    }

    /// Bound how long [`WireClient::read_reply`] may block.
    ///
    /// # Errors
    /// The setsockopt error.
    pub fn set_reply_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// One full exchange: send a width-4 request, read its reply.
    ///
    /// # Errors
    /// Any [`WireError`] along the way.
    pub fn sort(
        &mut self,
        keys: &[u32],
        dir: Direction,
        deadline: Option<Duration>,
    ) -> Result<ReplyFrame, WireError> {
        self.send(&RequestFrame::from_u32_keys(keys, dir, deadline))?;
        self.read_reply()
    }

    /// One full exchange with an arbitrary (e.g. record) request frame:
    /// send it, read its reply.
    ///
    /// # Errors
    /// Any [`WireError`] along the way.
    pub fn exchange(&mut self, frame: &RequestFrame) -> Result<ReplyFrame, WireError> {
        self.send(frame)?;
        self.read_reply()
    }

    /// Send one encoded request frame.
    ///
    /// # Errors
    /// The socket error.
    pub fn send(&mut self, frame: &RequestFrame) -> Result<(), WireError> {
        self.send_raw(&frame.encode())
    }

    /// Put arbitrary bytes on the wire (conformance tests only).
    ///
    /// # Errors
    /// The socket error.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Read and decode one reply frame.
    ///
    /// # Errors
    /// [`WireError::Disconnected`] on EOF, [`WireError::Frame`] when the
    /// reply does not decode, [`WireError::Io`] otherwise.
    pub fn read_reply(&mut self) -> Result<ReplyFrame, WireError> {
        let mut prefix = [0u8; LEN_PREFIX];
        self.stream.read_exact(&mut prefix)?;
        let declared = u32::from_le_bytes(prefix) as usize;
        if declared > MAX_REPLY_BYTES {
            return Err(WireError::Frame(FrameError::Oversized {
                declared,
                limit: MAX_REPLY_BYTES,
            }));
        }
        let mut payload = vec![0u8; declared];
        self.stream.read_exact(&mut payload)?;
        ReplyFrame::decode(&payload).map_err(WireError::Frame)
    }

    /// Half-close the write side (the server sees a clean EOF once it
    /// finishes reading).
    ///
    /// # Errors
    /// The shutdown error.
    pub fn shutdown_write(&self) -> std::io::Result<()> {
        self.stream.shutdown(Shutdown::Write)
    }

    /// The underlying stream (for chaos tests that need raw control).
    #[must_use]
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
