//! Deterministic connection-fault injection for the wire frontend.
//!
//! The SPMD chaos layer (`spmd::fault`) perturbs *intra-machine*
//! messages; this module perturbs the *client side of the socket*:
//! half-open peers, slow-loris writers, mid-frame disconnects, and
//! malformed frames. Every fault is a pure value ([`ConnFault`]) with a
//! known expected server-side [`Disconnect`](crate::net::Disconnect)
//! label, and [`plan`] derives
//! a fault sequence from a seed alone — replaying the same seed against
//! a fresh server must produce identical per-reason disconnect tallies
//! (conformance-tested in `tests/wire.rs`).

use crate::net::frame::{RequestFrame, LEN_PREFIX, MAGIC, VERSION};
use bitonic_network::Direction;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One client-side connection fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnFault {
    /// Connect, send nothing, and linger: the half-open / silent peer.
    HalfOpen,
    /// Trickle a valid frame one byte per `byte_gap`, never finishing
    /// within any reasonable read budget.
    SlowLoris {
        /// Pause between bytes.
        byte_gap: Duration,
    },
    /// Send the first `keep_bytes` of a valid frame, then close.
    MidFrameCut {
        /// Bytes of the encoded frame to send before closing (clamped
        /// inside the frame so the cut is genuinely mid-frame).
        keep_bytes: usize,
    },
    /// A length-prefixed frame of junk bytes (bad magic).
    Garbage {
        /// Junk payload length.
        len: usize,
    },
    /// A correct frame except for an unknown protocol version.
    BadVersion,
    /// A length prefix declaring more than the server's frame limit.
    Oversized {
        /// Declared payload size.
        declared: u32,
    },
    /// A complete frame whose payload is shorter than a request header.
    TruncatedHeader,
}

/// Fault classes [`plan`] draws from, in draw order.
pub const FAULT_CLASSES: usize = 7;

impl ConnFault {
    /// Short name for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ConnFault::HalfOpen => "half_open",
            ConnFault::SlowLoris { .. } => "slow_loris",
            ConnFault::MidFrameCut { .. } => "mid_frame_cut",
            ConnFault::Garbage { .. } => "garbage",
            ConnFault::BadVersion => "bad_version",
            ConnFault::Oversized { .. } => "oversized",
            ConnFault::TruncatedHeader => "truncated_header",
        }
    }

    /// The [`Disconnect::label`](crate::net::Disconnect::label) the
    /// server must close the faulty connection with.
    #[must_use]
    pub fn expected_disconnect(&self) -> &'static str {
        match self {
            ConnFault::HalfOpen => "idle_timeout",
            ConnFault::SlowLoris { .. } => "read_stall",
            ConnFault::MidFrameCut { .. } => "mid_frame_eof",
            ConnFault::Garbage { .. }
            | ConnFault::BadVersion
            | ConnFault::Oversized { .. }
            | ConnFault::TruncatedHeader => "bad_frame",
        }
    }

    /// The bytes this fault puts on the wire (empty for [`ConnFault::HalfOpen`]).
    #[must_use]
    pub fn wire_bytes(&self) -> Vec<u8> {
        let valid = RequestFrame::from_u32_keys(&[9, 4, 6, 1], Direction::Ascending, None).encode();
        match self {
            ConnFault::HalfOpen => Vec::new(),
            ConnFault::SlowLoris { .. } => valid,
            ConnFault::MidFrameCut { keep_bytes } => {
                // At least the length prefix plus one byte, never the
                // whole frame: the server must be mid-frame at the cut.
                let keep = (*keep_bytes).clamp(LEN_PREFIX + 1, valid.len() - 1);
                valid[..keep].to_vec()
            }
            ConnFault::Garbage { len } => {
                let mut out = Vec::with_capacity(LEN_PREFIX + len);
                out.extend_from_slice(&(*len as u32).to_le_bytes());
                out.extend((0..*len).map(|i| (i as u8) ^ 0x5a));
                out
            }
            ConnFault::BadVersion => {
                let mut out = valid;
                out[LEN_PREFIX + MAGIC.len()] = VERSION + 7;
                out
            }
            ConnFault::Oversized { declared } => declared.to_le_bytes().to_vec(),
            ConnFault::TruncatedHeader => {
                let mut out = Vec::with_capacity(LEN_PREFIX + 8);
                out.extend_from_slice(&8u32.to_le_bytes());
                out.extend_from_slice(&MAGIC);
                out.extend_from_slice(&[VERSION, 0, 4, 0]);
                out
            }
        }
    }
}

/// Derive a deterministic fault sequence from a seed: the same
/// `(seed, conns)` always yields the same faults in the same order.
#[must_use]
pub fn plan(seed: u64, conns: usize) -> Vec<ConnFault> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..conns)
        .map(|_| match next() % FAULT_CLASSES as u64 {
            0 => ConnFault::HalfOpen,
            1 => ConnFault::SlowLoris {
                byte_gap: Duration::from_millis(10 + next() % 20),
            },
            2 => ConnFault::MidFrameCut {
                keep_bytes: LEN_PREFIX + 1 + (next() % 30) as usize,
            },
            3 => ConnFault::Garbage {
                len: 1 + (next() % 64) as usize,
            },
            4 => ConnFault::BadVersion,
            5 => ConnFault::Oversized {
                declared: u32::MAX - (next() % 1000) as u32,
            },
            _ => ConnFault::TruncatedHeader,
        })
        .collect()
}

/// Run one fault against a live server and wait (bounded) for the
/// server to close the connection, so the caller can assert the
/// disconnect tally immediately after.
///
/// # Errors
/// The connect error; errors after the fault bytes are on the wire are
/// the expected outcome and are swallowed.
pub fn inject(addr: SocketAddr, fault: &ConnFault, patience: Duration) -> std::io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    match fault {
        ConnFault::SlowLoris { byte_gap } => {
            for byte in fault.wire_bytes() {
                if stream.write_all(&[byte]).is_err() {
                    break;
                }
                std::thread::sleep(*byte_gap);
            }
        }
        ConnFault::MidFrameCut { .. } => {
            let _ = stream.write_all(&fault.wire_bytes());
            return Ok(()); // close immediately: that IS the fault
        }
        _ => {
            let _ = stream.write_all(&fault.wire_bytes());
        }
    }
    wait_for_close(&mut stream, patience);
    Ok(())
}

/// Drain the socket until the server closes it (or `patience` runs out).
fn wait_for_close(stream: &mut TcpStream, patience: Duration) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let start = Instant::now();
    let mut sink = [0u8; 512];
    while start.elapsed() < patience {
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return,
        }
    }
}
