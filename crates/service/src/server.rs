//! The front door: submission, the dispatcher loop, tickets and stats.
//!
//! [`SortService::start`] spawns one dispatcher thread that owns the
//! [`WarmPool`]. Clients call [`SortService::submit`] from any thread;
//! admission control answers immediately (admitted requests get a
//! [`Ticket`], shed ones a structured [`Rejection`]). The dispatcher
//! pulls admitted requests from the queue under the [`Coalescer`]'s
//! flush/wait policy, encodes them as one [`TaggedBatch`], runs the
//! batch on a warm machine, and scatters per-request replies back
//! through the tickets.
//!
//! Every stage is recorded as a span in the service's
//! [`obs::TraceSink`] under the serving-layer phases —
//! `Queue` (submit → batch formation, one span per request), `Batch`
//! (coalesce + encode + pad), `Run` (the machine), `Scatter` (split +
//! reply) — with the span's `step` carrying the batch number.

use crate::admission::{Admission, Rejection};
use crate::coalescer::{Coalescer, Verdict};
use crate::config::ServiceConfig;
use crate::metrics::{ClassMetrics, ServiceMetrics};
use crate::pool::WarmPool;
use bitonic_core::tagged::{RecordBatch, RecordWord, TaggedBatch};
use bitonic_network::Direction;
use local_sorts::W192;
use obs::{RankTrace, TracePhase, TraceSink};
use spmd::MachineFailure;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One client sort request.
#[derive(Debug, Clone)]
pub struct SortRequest {
    /// The keys to sort.
    pub keys: Vec<u32>,
    /// Requested output order.
    pub dir: Direction,
    /// Per-request deadline; [`ServiceConfig::default_deadline`] when
    /// `None`. A request predicted to miss its deadline is shed at
    /// submission; one that misses it in the queue anyway is expired.
    pub deadline: Option<Duration>,
}

impl SortRequest {
    /// An ascending sort of `keys` under the service's default deadline.
    #[must_use]
    pub fn ascending(keys: Vec<u32>) -> Self {
        SortRequest {
            keys,
            dir: Direction::Ascending,
            deadline: None,
        }
    }

    /// A sort of `keys` in `dir` under the service's default deadline.
    #[must_use]
    pub fn new(keys: Vec<u32>, dir: Direction) -> Self {
        SortRequest {
            keys,
            dir,
            deadline: None,
        }
    }

    /// This request with an explicit deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Why an *admitted* request still failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortError {
    /// The request out-waited its deadline in the queue.
    Expired {
        /// How long it actually waited.
        waited: Duration,
        /// The deadline it carried.
        deadline: Duration,
    },
    /// The batch carrying the request failed (watchdog gave up on a
    /// stalled rank, or a rank panicked); its machine was replaced.
    MachineFailed(String),
    /// The service shut down before the request could be answered.
    ServiceClosed,
    /// A bulk request's sub-request sank on one shard; the failure
    /// names the shard and the reason, and every surviving partition
    /// was discarded (a partial bulk sort is not a sort).
    Bulk(crate::split::BulkFailure),
}

impl std::fmt::Display for SortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SortError::Expired { waited, deadline } => {
                write!(f, "deadline {deadline:?} exceeded after waiting {waited:?}")
            }
            SortError::MachineFailed(msg) => write!(f, "batch failed: {msg}"),
            SortError::ServiceClosed => write!(f, "service closed"),
            SortError::Bulk(failure) => write!(f, "bulk sort failed: {failure}"),
        }
    }
}

impl std::error::Error for SortError {}

/// A claim on an admitted request's eventual reply.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: mpsc::Receiver<Result<Vec<u32>, SortError>>,
}

impl Ticket {
    /// Block until the reply arrives.
    ///
    /// # Errors
    /// The [`SortError`] describing why the admitted request failed.
    pub fn wait(self) -> Result<Vec<u32>, SortError> {
        self.rx.recv().unwrap_or(Err(SortError::ServiceClosed))
    }
}

/// The keys of a record request, at one of the three supported widths.
///
/// u32 keys ride the 128-bit record word (zero-extended to u64 — the
/// descending munge happens in the 64-bit domain, which preserves order
/// and round-trips); u128 keys ride the 192-bit word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordKeys {
    /// 4-byte keys.
    U32(Vec<u32>),
    /// 8-byte keys.
    U64(Vec<u64>),
    /// 16-byte keys.
    U128(Vec<u128>),
}

impl RecordKeys {
    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            RecordKeys::U32(k) => k.len(),
            RecordKeys::U64(k) => k.len(),
            RecordKeys::U128(k) => k.len(),
        }
    }

    /// True when there are no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Key width in bytes (4, 8 or 16).
    #[must_use]
    pub fn width(&self) -> u8 {
        match self {
            RecordKeys::U32(_) => 4,
            RecordKeys::U64(_) => 8,
            RecordKeys::U128(_) => 16,
        }
    }
}

/// One client record-sort request: keys plus an opaque payload of
/// `stride` bytes per key, carried through the sort untouched and
/// handed back in key order.
#[derive(Debug, Clone)]
pub struct RecordRequest {
    /// The keys to sort.
    pub keys: RecordKeys,
    /// `stride` bytes per key, row `i` belonging to `keys[i]`. Length
    /// must equal `stride * keys.len()`; `stride` 0 means key-only.
    pub payload: Vec<u8>,
    /// Payload bytes per key.
    pub stride: usize,
    /// Requested output order.
    pub dir: Direction,
    /// Per-request deadline; the service default when `None`.
    pub deadline: Option<Duration>,
}

impl RecordRequest {
    /// A record request sorting `keys` in `dir` with `stride` payload
    /// bytes per key.
    ///
    /// # Panics
    /// Panics if `payload.len() != stride * keys.len()`.
    #[must_use]
    pub fn new(keys: RecordKeys, payload: Vec<u8>, stride: usize, dir: Direction) -> Self {
        assert_eq!(
            payload.len(),
            stride * keys.len(),
            "payload must hold exactly stride bytes per key"
        );
        RecordRequest {
            keys,
            payload,
            stride,
            dir,
            deadline: None,
        }
    }

    /// This request with an explicit deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A sorted record reply: keys in the requested order, with payload row
/// `i` being the bytes that arrived attached to what is now `keys[i]`.
/// Ties are stable — records with equal keys come back in submission
/// order for both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordReply {
    /// The sorted keys.
    pub keys: RecordKeys,
    /// Payload rows, permuted into key order.
    pub payload: Vec<u8>,
    /// Payload bytes per key (echoed from the request).
    pub stride: usize,
}

/// A claim on an admitted record request's eventual reply.
#[derive(Debug)]
pub struct RecordTicket {
    pub(crate) rx: mpsc::Receiver<Result<RecordReply, SortError>>,
}

impl RecordTicket {
    /// Block until the reply arrives.
    ///
    /// # Errors
    /// The [`SortError`] describing why the admitted request failed.
    pub fn wait(self) -> Result<RecordReply, SortError> {
        self.rx.recv().unwrap_or(Err(SortError::ServiceClosed))
    }
}

/// Service-lifetime counters, readable at any time via
/// [`SortService::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests presented to `submit`.
    pub submitted: u64,
    /// Requests past admission control.
    pub admitted: u64,
    /// Requests shed at the door (see [`Rejection`]).
    pub shed: u64,
    /// Admitted requests that out-waited their deadline in the queue.
    pub expired: u64,
    /// Admitted requests lost to a failed batch.
    pub failed: u64,
    /// Requests answered with sorted keys.
    pub completed: u64,
    /// Batches formed (including ones that later failed).
    pub batches: u64,
    /// Useful keys across all formed batches (padding excluded).
    pub batched_keys: u64,
    /// Most requests coalesced into one batch.
    pub largest_batch: u64,
    /// The warm pool's counters (machine runs, rebuilds, plan cache).
    pub pool: crate::pool::PoolStats,
}

impl ServiceStats {
    /// Mean requests per formed batch; 0 for an unused service.
    #[must_use]
    pub fn requests_per_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        (self.completed + self.failed) as f64 / self.batches as f64
    }
}

/// What a finished service hands back.
#[derive(Debug)]
pub struct ServiceReport {
    /// Final counters.
    pub stats: ServiceStats,
    /// The dispatcher's span timeline (empty unless the service was
    /// started with tracing enabled).
    pub trace: RankTrace,
}

/// The work carried by one queued request: a legacy bare-key sort, or a
/// record sort carrying payload bytes alongside the keys.
pub(crate) enum PendingWork {
    Plain {
        keys: Vec<u32>,
        reply: mpsc::Sender<Result<Vec<u32>, SortError>>,
    },
    Record {
        keys: RecordKeys,
        payload: Vec<u8>,
        stride: usize,
        reply: mpsc::Sender<Result<RecordReply, SortError>>,
    },
}

/// The coalescing lane of a queued request. Requests only share a batch
/// with same-lane peers: a batch is one word stream, so every element in
/// it must use the same word shape and key width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lane {
    Plain,
    Rec32,
    Rec64,
    Rec128,
}

/// An admitted request waiting in a queue — the unit both the
/// single-pool dispatcher and the sharded workers (including steals)
/// move around.
pub(crate) struct Pending {
    pub(crate) work: PendingWork,
    pub(crate) dir: Direction,
    pub(crate) deadline: Duration,
    pub(crate) enqueued: Instant,
}

impl Pending {
    pub(crate) fn plain(
        keys: Vec<u32>,
        dir: Direction,
        deadline: Duration,
        reply: mpsc::Sender<Result<Vec<u32>, SortError>>,
    ) -> Self {
        Pending {
            work: PendingWork::Plain { keys, reply },
            dir,
            deadline,
            enqueued: Instant::now(),
        }
    }

    pub(crate) fn record(
        keys: RecordKeys,
        payload: Vec<u8>,
        stride: usize,
        dir: Direction,
        deadline: Duration,
        reply: mpsc::Sender<Result<RecordReply, SortError>>,
    ) -> Self {
        Pending {
            work: PendingWork::Record {
                keys,
                payload,
                stride,
                reply,
            },
            dir,
            deadline,
            enqueued: Instant::now(),
        }
    }

    pub(crate) fn key_count(&self) -> usize {
        match &self.work {
            PendingWork::Plain { keys, .. } => keys.len(),
            PendingWork::Record { keys, .. } => keys.len(),
        }
    }

    pub(crate) fn lane(&self) -> Lane {
        match &self.work {
            PendingWork::Plain { .. } => Lane::Plain,
            PendingWork::Record { keys, .. } => match keys {
                RecordKeys::U32(_) => Lane::Rec32,
                RecordKeys::U64(_) => Lane::Rec64,
                RecordKeys::U128(_) => Lane::Rec128,
            },
        }
    }

    /// Send the failure to whichever reply channel this request carries.
    pub(crate) fn fail(&self, err: SortError) {
        match &self.work {
            PendingWork::Plain { reply, .. } => {
                let _ = reply.send(Err(err));
            }
            PendingWork::Record { reply, .. } => {
                let _ = reply.send(Err(err));
            }
        }
    }
}

/// Pop the FIFO prefix of `pending` that fits `max_batch_keys`, keeping
/// `pending_keys` consistent. Always takes at least one request when the
/// queue is non-empty (admission guarantees any single admitted request
/// fits one batch). The prefix stops at the first request in a different
/// coalescing lane than the head — records only batch with same-width
/// peers, and never with plain sorts. Shared by the single-pool
/// dispatcher, the shard workers, and the work-stealing path — a thief
/// claiming a victim's oldest batch takes exactly the prefix the victim
/// itself would have.
pub(crate) fn take_prefix(
    pending: &mut VecDeque<Pending>,
    pending_keys: &mut usize,
    max_batch_keys: usize,
) -> Vec<Pending> {
    let mut batch = Vec::new();
    let mut keys = 0usize;
    let mut lane = None;
    while let Some(front) = pending.front() {
        let k = front.key_count();
        if !batch.is_empty() && keys + k > max_batch_keys {
            break;
        }
        if *lane.get_or_insert(front.lane()) != front.lane() {
            break;
        }
        keys += k;
        *pending_keys -= k;
        batch.push(pending.pop_front().expect("front exists"));
    }
    batch
}

/// What [`process_batch`] did with one taken batch.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BatchOutcome {
    pub(crate) requests: u64,
    pub(crate) expired: u64,
    pub(crate) completed: u64,
    pub(crate) failed: u64,
    pub(crate) batched_keys: u64,
}

/// Gather payload rows of `stride` bytes into the order given by
/// `perm`: output row `i` is input row `perm[i]`.
pub(crate) fn gather_rows(payload: &[u8], stride: usize, perm: &[u32]) -> Vec<u8> {
    if stride == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(perm.len() * stride);
    for &r in perm {
        let at = r as usize * stride;
        out.extend_from_slice(&payload[at..at + stride]);
    }
    out
}

/// Expire the stale, encode the live requests as one batch (a
/// [`TaggedBatch`] for plain sorts, a [`RecordBatch`] for record sorts
/// — `take_prefix` guarantees a taken batch is single-lane), run it on
/// `pool`, and scatter the replies — recording `Queue`/`Batch`/`Run`/
/// `Scatter` spans (with `batch_no` as the span step) along the way.
/// Shared by the single-pool dispatcher and every shard worker.
pub(crate) fn process_batch(
    pool: &mut WarmPool,
    procs: usize,
    batch: Vec<Pending>,
    sink: &mut TraceSink,
    batch_no: u32,
    metrics: Option<&ClassMetrics>,
) -> BatchOutcome {
    sink.set_step(batch_no);
    let formed_at = Instant::now();
    let mut outcome = BatchOutcome {
        requests: batch.len() as u64,
        ..BatchOutcome::default()
    };
    if let Some(m) = metrics {
        m.batches.inc();
        m.batch_requests.observe(batch.len() as u64);
    }

    // Expiry sweep, shared by every lane.
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    for p in batch {
        sink.span(TracePhase::Queue, p.enqueued, formed_at);
        let waited = formed_at.duration_since(p.enqueued);
        if let Some(m) = metrics {
            m.queue_wait_us.observe_us(waited);
        }
        if waited > p.deadline {
            p.fail(SortError::Expired {
                waited,
                deadline: p.deadline,
            });
            outcome.expired += 1;
            if let Some(m) = metrics {
                m.expired.inc();
                m.slo.record_expired(m.now());
            }
            continue;
        }
        live.push(p);
    }

    outcome.batched_keys = live.iter().map(Pending::key_count).sum::<usize>() as u64;
    if let Some(m) = metrics {
        m.batch_keys.observe(outcome.batched_keys);
    }
    if live.is_empty() {
        return outcome;
    }
    match live[0].lane() {
        Lane::Plain => run_plain_batch(pool, procs, &live, formed_at, sink, metrics, &mut outcome),
        Lane::Rec32 => run_record_batch::<u128>(
            pool,
            procs,
            &live,
            formed_at,
            sink,
            metrics,
            &mut outcome,
            |keys| match keys {
                RecordKeys::U32(k) => k.iter().copied().map(u64::from).collect(),
                _ => unreachable!("single-lane batch"),
            },
            |keys| RecordKeys::U32(keys.into_iter().map(|k| k as u32).collect()),
            WarmPool::run_record128_batch,
        ),
        Lane::Rec64 => run_record_batch::<u128>(
            pool,
            procs,
            &live,
            formed_at,
            sink,
            metrics,
            &mut outcome,
            |keys| match keys {
                RecordKeys::U64(k) => k.clone(),
                _ => unreachable!("single-lane batch"),
            },
            RecordKeys::U64,
            WarmPool::run_record128_batch,
        ),
        Lane::Rec128 => run_record_batch::<W192>(
            pool,
            procs,
            &live,
            formed_at,
            sink,
            metrics,
            &mut outcome,
            |keys| match keys {
                RecordKeys::U128(k) => k.clone(),
                _ => unreachable!("single-lane batch"),
            },
            RecordKeys::U128,
            WarmPool::run_record192_batch,
        ),
    }
    outcome
}

/// The legacy bare-key path: encode as a [`TaggedBatch`], run, split.
fn run_plain_batch(
    pool: &mut WarmPool,
    procs: usize,
    live: &[Pending],
    formed_at: Instant,
    sink: &mut TraceSink,
    metrics: Option<&ClassMetrics>,
    outcome: &mut BatchOutcome,
) {
    let mut tagged = TaggedBatch::new();
    for p in live {
        let PendingWork::Plain { keys, .. } = &p.work else {
            unreachable!("single-lane batch");
        };
        tagged.push(keys, p.dir);
    }
    let (words, per_rank) = tagged.padded_words(procs);
    let encoded_at = Instant::now();
    sink.span(TracePhase::Batch, formed_at, encoded_at);
    let result = pool.run_batch(words, per_rank);
    let ran_at = Instant::now();
    sink.span(TracePhase::Run, encoded_at, ran_at);
    observe_drift(metrics, outcome.batched_keys, encoded_at, ran_at);
    match result {
        Ok(sorted) => {
            let replies = tagged.split(&sorted);
            for (p, r) in live.iter().zip(replies) {
                let PendingWork::Plain { reply, .. } = &p.work else {
                    unreachable!("single-lane batch");
                };
                let _ = reply.send(Ok(r));
            }
            note_batch_completed(live, ran_at, sink, metrics, outcome);
        }
        Err(failure) => note_batch_failed(live, &failure, metrics, outcome),
    }
}

/// The record path, generic over the machine word `W` (u128 for u32/u64
/// keys, [`W192`] for u128 keys). `widen` lifts a request's keys into
/// the word's key domain, `narrow` rebuilds [`RecordKeys`] from sorted
/// wide keys, and `run` picks the pool's machine for this word shape.
#[allow(clippy::too_many_arguments)]
fn run_record_batch<W: RecordWord>(
    pool: &mut WarmPool,
    procs: usize,
    live: &[Pending],
    formed_at: Instant,
    sink: &mut TraceSink,
    metrics: Option<&ClassMetrics>,
    outcome: &mut BatchOutcome,
    widen: impl Fn(&RecordKeys) -> Vec<W::Key>,
    narrow: impl Fn(Vec<W::Key>) -> RecordKeys,
    run: impl FnOnce(&mut WarmPool, Vec<W>, usize) -> Result<Vec<W>, MachineFailure>,
) {
    let mut rec = RecordBatch::<W>::new();
    for p in live {
        let PendingWork::Record { keys, .. } = &p.work else {
            unreachable!("single-lane batch");
        };
        rec.push(&widen(keys), p.dir);
    }
    let (words, per_rank) = rec.padded_words(procs);
    let encoded_at = Instant::now();
    sink.span(TracePhase::Batch, formed_at, encoded_at);
    let result = run(pool, words, per_rank);
    let ran_at = Instant::now();
    sink.span(TracePhase::Run, encoded_at, ran_at);
    observe_drift(metrics, outcome.batched_keys, encoded_at, ran_at);
    match result {
        Ok(sorted) => {
            let segments = rec.split(&sorted);
            for (p, seg) in live.iter().zip(segments) {
                let PendingWork::Record {
                    keys,
                    payload,
                    stride,
                    reply,
                } = &p.work
                else {
                    unreachable!("single-lane batch");
                };
                if let Some(m) = metrics {
                    m.record_record_request(keys.width(), payload.len() as u64);
                }
                let _ = reply.send(Ok(RecordReply {
                    keys: narrow(seg.keys),
                    payload: gather_rows(payload, *stride, &seg.perm),
                    stride: *stride,
                }));
            }
            note_batch_completed(live, ran_at, sink, metrics, outcome);
        }
        Err(failure) => note_batch_failed(live, &failure, metrics, outcome),
    }
}

/// The live drift signal: how far off the LogP prediction for this
/// batch's key count the machine actually ran.
fn observe_drift(
    metrics: Option<&ClassMetrics>,
    batched_keys: u64,
    encoded_at: Instant,
    ran_at: Instant,
) {
    if let Some(m) = metrics {
        let predicted = m.cost().predicted_run(batched_keys as usize);
        m.drift
            .observe(predicted, ran_at.duration_since(encoded_at));
    }
}

/// Shared completion bookkeeping: the `Scatter` span, per-request
/// latency + SLO marks, and the completed counters.
fn note_batch_completed(
    live: &[Pending],
    ran_at: Instant,
    sink: &mut TraceSink,
    metrics: Option<&ClassMetrics>,
    outcome: &mut BatchOutcome,
) {
    outcome.completed = live.len() as u64;
    sink.span(TracePhase::Scatter, ran_at, Instant::now());
    if let Some(m) = metrics {
        let replied_at = Instant::now();
        for p in live {
            let latency = replied_at.duration_since(p.enqueued);
            m.latency_us.observe_us(latency);
            m.slo.record_latency(m.now(), latency);
        }
        m.completed.add(live.len() as u64);
    }
}

/// Shared failure bookkeeping: fail every live request and bump the
/// failed counters.
fn note_batch_failed(
    live: &[Pending],
    failure: &MachineFailure,
    metrics: Option<&ClassMetrics>,
    outcome: &mut BatchOutcome,
) {
    let msg = failure.to_string();
    for p in live {
        p.fail(SortError::MachineFailed(msg.clone()));
    }
    outcome.failed = live.len() as u64;
    if let Some(m) = metrics {
        m.failed.add(live.len() as u64);
        for _ in live {
            m.slo.record_failed(m.now());
        }
    }
}

struct QueueState {
    pending: VecDeque<Pending>,
    pending_keys: usize,
    closed: bool,
    stats: ServiceStats,
}

struct Shared {
    q: Mutex<QueueState>,
    cv: Condvar,
}

/// A running sort service.
///
/// Submissions are accepted from any thread (`&self`); dropping the
/// service (or calling [`SortService::shutdown`]) drains the queue and
/// joins the dispatcher.
#[derive(Debug)]
pub struct SortService {
    shared: Arc<Shared>,
    admission: Admission,
    default_deadline: Duration,
    metrics: Option<Arc<ServiceMetrics>>,
    dispatcher: Option<std::thread::JoinHandle<ServiceReport>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl SortService {
    /// Boot the warm pool and start the dispatcher.
    ///
    /// # Panics
    /// Panics if `config` fails [`ServiceConfig::validate`].
    #[must_use]
    pub fn start(config: ServiceConfig) -> Self {
        config.validate();
        let shared = Arc::new(Shared {
            q: Mutex::new(QueueState {
                pending: VecDeque::new(),
                pending_keys: 0,
                closed: false,
                stats: ServiceStats::default(),
            }),
            cv: Condvar::new(),
        });
        let metrics = config.metrics.then(|| ServiceMetrics::for_single(&config));
        let dispatcher_shared = Arc::clone(&shared);
        let dispatcher_metrics = metrics.clone();
        let dispatcher =
            std::thread::spawn(move || dispatch(config, &dispatcher_shared, dispatcher_metrics));
        SortService {
            shared,
            admission: Admission::new(&config),
            default_deadline: config.default_deadline,
            metrics,
            dispatcher: Some(dispatcher),
        }
    }

    /// The live metrics plane, when [`ServiceConfig::metrics`] is on.
    /// The handle stays valid (and final totals readable) after
    /// [`SortService::shutdown`] if cloned first.
    #[must_use]
    pub fn metrics(&self) -> Option<Arc<ServiceMetrics>> {
        self.metrics.clone()
    }

    /// Submit a request. Admitted requests return a [`Ticket`]; shed
    /// ones a structured [`Rejection`] without ever touching a machine.
    ///
    /// # Errors
    /// The [`Rejection`] naming the admission limit the request hit.
    pub fn submit(&self, request: SortRequest) -> Result<Ticket, Rejection> {
        let deadline = request.deadline.unwrap_or(self.default_deadline);
        let m = self.metrics.as_deref().map(|m| m.class(0).clone());
        let mut q = self.shared.q.lock().expect("queue lock");
        q.stats.submitted += 1;
        if let Some(m) = &m {
            m.submitted.inc();
        }
        if q.closed {
            q.stats.shed += 1;
            if let Some(m) = &m {
                m.record_shed(&Rejection::Closed);
            }
            return Err(Rejection::Closed);
        }
        if let Err(r) = self.admission.admit(
            q.pending.len(),
            q.pending_keys,
            request.keys.len(),
            deadline,
        ) {
            q.stats.shed += 1;
            if let Some(m) = &m {
                m.record_shed(&r);
            }
            return Err(r);
        }
        q.stats.admitted += 1;
        q.pending_keys += request.keys.len();
        let (reply, rx) = mpsc::channel();
        q.pending
            .push_back(Pending::plain(request.keys, request.dir, deadline, reply));
        if let Some(m) = &m {
            m.admitted.inc();
            m.set_queue(q.pending.len(), q.pending_keys);
        }
        drop(q);
        self.shared.cv.notify_all();
        Ok(Ticket { rx })
    }

    /// Submit a record request: keys at any supported width plus an
    /// opaque payload carried through the sort and handed back in key
    /// order. Admission treats a record like a plain request with the
    /// same key count; records only coalesce with same-width peers.
    ///
    /// # Errors
    /// The [`Rejection`] naming the admission limit the request hit.
    pub fn submit_record(&self, request: RecordRequest) -> Result<RecordTicket, Rejection> {
        assert_eq!(
            request.payload.len(),
            request.stride * request.keys.len(),
            "payload must hold exactly stride bytes per key"
        );
        let deadline = request.deadline.unwrap_or(self.default_deadline);
        let m = self.metrics.as_deref().map(|m| m.class(0).clone());
        let mut q = self.shared.q.lock().expect("queue lock");
        q.stats.submitted += 1;
        if let Some(m) = &m {
            m.submitted.inc();
        }
        if q.closed {
            q.stats.shed += 1;
            if let Some(m) = &m {
                m.record_shed(&Rejection::Closed);
            }
            return Err(Rejection::Closed);
        }
        if let Err(r) = self.admission.admit(
            q.pending.len(),
            q.pending_keys,
            request.keys.len(),
            deadline,
        ) {
            q.stats.shed += 1;
            if let Some(m) = &m {
                m.record_shed(&r);
            }
            return Err(r);
        }
        q.stats.admitted += 1;
        q.pending_keys += request.keys.len();
        let (reply, rx) = mpsc::channel();
        q.pending.push_back(Pending::record(
            request.keys,
            request.payload,
            request.stride,
            request.dir,
            deadline,
            reply,
        ));
        if let Some(m) = &m {
            m.admitted.inc();
            m.set_queue(q.pending.len(), q.pending_keys);
        }
        drop(q);
        self.shared.cv.notify_all();
        Ok(RecordTicket { rx })
    }

    /// A snapshot of the counters (pool counters are as of the most
    /// recently finished batch).
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.shared.q.lock().expect("queue lock").stats
    }

    /// Stop accepting requests, drain the queue, and return the final
    /// report.
    ///
    /// # Panics
    /// Panics if the dispatcher thread itself panicked.
    #[must_use]
    pub fn shutdown(mut self) -> ServiceReport {
        let handle = self.dispatcher.take().expect("dispatcher present");
        self.close();
        handle.join().expect("dispatcher thread panicked")
    }

    fn close(&self) {
        self.shared.q.lock().expect("queue lock").closed = true;
        self.shared.cv.notify_all();
    }
}

impl Drop for SortService {
    fn drop(&mut self) {
        if let Some(handle) = self.dispatcher.take() {
            self.close();
            let _ = handle.join();
        }
    }
}

/// The dispatcher: coalesce → run → scatter until closed and drained.
fn dispatch(
    cfg: ServiceConfig,
    shared: &Shared,
    metrics: Option<Arc<ServiceMetrics>>,
) -> ServiceReport {
    let mut pool = WarmPool::new(&cfg);
    let class = metrics.as_deref().map(|m| m.class(0).clone());
    if let Some(c) = &class {
        pool.set_metrics(c.clone());
    }
    let coalescer = Coalescer::new(&cfg);
    let mut sink = TraceSink::new(0, cfg.trace, Instant::now());
    let mut batch_no: u32 = 0;

    loop {
        // Hold the lock only to decide and to take a batch.
        let taken: Option<Vec<Pending>> = {
            let mut q = shared.q.lock().expect("queue lock");
            loop {
                if q.pending.is_empty() {
                    if q.closed {
                        break None;
                    }
                    q = shared.cv.wait(q).expect("queue lock");
                    continue;
                }
                let now = Instant::now();
                let oldest_age = now.duration_since(q.pending[0].enqueued);
                let tightest_slack = q
                    .pending
                    .iter()
                    .map(|p| p.deadline.saturating_sub(now.duration_since(p.enqueued)))
                    .min()
                    .expect("queue is non-empty");
                match coalescer.decide(q.pending_keys, oldest_age, tightest_slack, q.closed) {
                    Verdict::Flush => {
                        if let Some(c) = &class {
                            c.verdict_flush.inc();
                        }
                        let qs = &mut *q;
                        let batch =
                            take_prefix(&mut qs.pending, &mut qs.pending_keys, cfg.max_batch_keys);
                        if let Some(c) = &class {
                            c.set_queue(qs.pending.len(), qs.pending_keys);
                        }
                        break Some(batch);
                    }
                    Verdict::Wait(d) => {
                        if let Some(c) = &class {
                            c.verdict_wait.inc();
                        }
                        let (guard, _) = shared.cv.wait_timeout(q, d).expect("queue lock");
                        q = guard;
                    }
                }
            }
        };
        let Some(batch) = taken else {
            // Closed and drained: report and exit.
            let mut q = shared.q.lock().expect("queue lock");
            q.stats.pool = pool.stats();
            return ServiceReport {
                stats: q.stats,
                trace: sink.finish(),
            };
        };

        batch_no += 1;
        let outcome = process_batch(
            &mut pool,
            cfg.procs,
            batch,
            &mut sink,
            batch_no,
            class.as_deref(),
        );

        let mut q = shared.q.lock().expect("queue lock");
        q.stats.batches += 1;
        q.stats.batched_keys += outcome.batched_keys;
        q.stats.largest_batch = q.stats.largest_batch.max(outcome.requests);
        q.stats.expired += outcome.expired;
        q.stats.completed += outcome.completed;
        q.stats.failed += outcome.failed;
        q.stats.pool = pool.stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bitonic_core::tagged::sorted_independently;

    fn config(procs: usize) -> ServiceConfig {
        let mut cfg = ServiceConfig::new(procs);
        cfg.batch_watchdog = Some(Duration::from_millis(500));
        cfg
    }

    #[test]
    fn requests_come_back_sorted_in_their_requested_order() {
        let svc = SortService::start(config(2));
        let asc = svc
            .submit(SortRequest::ascending(vec![5, 1, 9, 1]))
            .unwrap();
        let desc = svc
            .submit(SortRequest::new(vec![3, 8, 2], Direction::Descending))
            .unwrap();
        let empty = svc.submit(SortRequest::ascending(vec![])).unwrap();
        assert_eq!(asc.wait().unwrap(), vec![1, 1, 5, 9]);
        assert_eq!(desc.wait().unwrap(), vec![8, 3, 2]);
        assert_eq!(empty.wait().unwrap(), Vec::<u32>::new());
        let report = svc.shutdown();
        assert_eq!(report.stats.completed, 3);
        assert_eq!(report.stats.shed, 0);
        assert_eq!(report.stats.failed, 0);
    }

    #[test]
    fn many_concurrent_clients_all_get_their_own_answer() {
        let svc = Arc::new(SortService::start(config(4)));
        let mut handles = Vec::new();
        for c in 0..16u32 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let keys: Vec<u32> = (0..64)
                    .map(|i| (c + 1) * 1000 + (i * 37 + c) % 100)
                    .collect();
                let dir = if c % 2 == 0 {
                    Direction::Ascending
                } else {
                    Direction::Descending
                };
                let expect = sorted_independently(&keys, dir);
                let got = svc
                    .submit(SortRequest::new(keys, dir))
                    .expect("admitted")
                    .wait()
                    .expect("sorted");
                assert_eq!(got, expect, "client {c}");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let Ok(svc) = Arc::try_unwrap(svc) else {
            panic!("all clients done");
        };
        let report = svc.shutdown();
        assert_eq!(report.stats.completed, 16);
        assert_eq!(
            report.stats.shed + report.stats.expired + report.stats.failed,
            0
        );
        assert!(report.stats.batches <= 16);
    }

    #[test]
    fn bounded_queue_sheds_with_structured_rejections() {
        let mut cfg = config(2);
        cfg.max_request_keys = 8;
        let svc = SortService::start(cfg);
        match svc.submit(SortRequest::ascending(vec![0; 9])) {
            Err(Rejection::TooLarge { keys: 9, limit: 8 }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let stats = svc.stats();
        assert_eq!((stats.submitted, stats.shed, stats.admitted), (1, 1, 0));
        drop(svc);
    }

    #[test]
    fn steady_state_batches_hit_the_plan_cache_every_time() {
        // Same request shape over and over: after the first batch of each
        // padded shape, no plan is ever computed again.
        let svc = SortService::start(config(2));
        let keys: Vec<u32> = (0..128u32).rev().collect();
        for _ in 0..4 {
            let t = svc.submit(SortRequest::ascending(keys.clone())).unwrap();
            assert!(t.wait().is_ok());
        }
        let report = svc.shutdown();
        let pool = report.stats.pool;
        assert!(pool.plan_misses > 0, "first batch was cold");
        assert_eq!(pool.last_batch_plan_misses, 0, "steady state is all hits");
        assert!(pool.plan_hit_rate() > 0.5);
    }

    #[test]
    fn record_requests_come_back_stable_with_their_payload() {
        use bitonic_core::tagged::records_sorted_independently;
        let svc = SortService::start(config(2));
        // Duplicate-heavy u64 keys; payload row = its original index.
        let keys: Vec<u64> = (0..48u64).map(|i| (i * 5) % 7).collect();
        let payload: Vec<u8> = (0..keys.len() as u64).flat_map(u64::to_le_bytes).collect();
        let t = svc
            .submit_record(RecordRequest::new(
                RecordKeys::U64(keys.clone()),
                payload,
                8,
                Direction::Descending,
            ))
            .unwrap();
        let got = t.wait().unwrap();
        let oracle = records_sorted_independently(&keys, Direction::Descending);
        assert_eq!(got.keys, RecordKeys::U64(oracle.keys));
        let want: Vec<u8> = oracle
            .perm
            .iter()
            .flat_map(|&i| u64::from(i).to_le_bytes())
            .collect();
        assert_eq!(got.payload, want, "payload rows follow their keys stably");

        // A mixed queue coalesces per lane but answers everyone: plain,
        // u32-record, and u128-record (empty payload) side by side.
        let plain = svc.submit(SortRequest::ascending(vec![3, 1, 2])).unwrap();
        let r32 = svc
            .submit_record(RecordRequest::new(
                RecordKeys::U32(vec![9, 2, 9, 1]),
                vec![4, 7, 5, 6],
                1,
                Direction::Ascending,
            ))
            .unwrap();
        let r128 = svc
            .submit_record(RecordRequest::new(
                RecordKeys::U128(vec![1 << 90, 1, 1 << 90]),
                vec![],
                0,
                Direction::Descending,
            ))
            .unwrap();
        assert_eq!(plain.wait().unwrap(), vec![1, 2, 3]);
        let r32 = r32.wait().unwrap();
        assert_eq!(r32.keys, RecordKeys::U32(vec![1, 2, 9, 9]));
        assert_eq!(r32.payload, vec![6, 7, 4, 5], "equal keys keep input order");
        let r128 = r128.wait().unwrap();
        assert_eq!(r128.keys, RecordKeys::U128(vec![1 << 90, 1 << 90, 1]));
        assert!(r128.payload.is_empty());
        let report = svc.shutdown();
        assert_eq!(report.stats.completed, 4);
        assert_eq!(report.stats.failed + report.stats.expired, 0);
    }

    #[test]
    fn tracing_records_the_serving_phases() {
        let mut cfg = config(2);
        cfg.trace = obs::TraceConfig::on();
        let svc = SortService::start(cfg);
        let t = svc.submit(SortRequest::ascending(vec![3, 1, 2])).unwrap();
        assert_eq!(t.wait().unwrap(), vec![1, 2, 3]);
        let report = svc.shutdown();
        for phase in [
            TracePhase::Queue,
            TracePhase::Batch,
            TracePhase::Run,
            TracePhase::Scatter,
        ] {
            assert!(
                report.trace.spans().any(|s| s.phase == phase),
                "missing {phase:?} span"
            );
        }
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let svc = SortService::start(config(2));
        let tickets: Vec<Ticket> = (0..8)
            .map(|i| {
                svc.submit(SortRequest::ascending(vec![8 - i as u32, i as u32]))
                    .unwrap()
            })
            .collect();
        let report = svc.shutdown();
        for t in tickets {
            assert!(t.wait().is_ok(), "admitted requests are answered");
        }
        assert_eq!(report.stats.completed, 8);
    }
}
