//! Sort-as-a-service: the serving layer over the SPMD bitonic sorter.
//!
//! The thesis's whole argument is that bitonic sort's fixed costs —
//! remaps, message startup (`o` and `L` in LogGP), plan construction —
//! amortize as `n/P` grows. A request path serving many small sorts
//! applies that insight one level up: instead of one machine per
//! request, many requests become one machine run.
//!
//! ```text
//!  clients ──submit──▶ [queue] ──coalesce──▶ [tagged batch]
//!                        │                        │
//!                   admission control        warm machine pool
//!                   (bounded queue,          (persistent ranks,
//!                    load shedding,           retained SortContext /
//!                    deadlines)               PlanCache state)
//!                                                 │
//!  clients ◀──scatter── per-request replies ◀── sorted words
//! ```
//!
//! The pieces:
//!
//! * [`TaggedBatch`](bitonic_core::tagged) (in `bitonic-core`) lifts each
//!   request's `u32` keys into `u64` words tagged with the request index,
//!   so one ascending machine sort yields every request's answer as a
//!   contiguous segment;
//! * [`Coalescer`] decides *when to stop waiting for more requests*,
//!   trading batch growth against deadline slack with `logp::predict` as
//!   the cost model;
//! * [`WarmPool`] owns persistent [`SpmdMachine`](spmd::SpmdMachine)s
//!   whose ranks retain their [`SortContext`](bitonic_core::SortContext)
//!   — steady-state batches hit cached remap plans — and replaces a
//!   machine whose watchdog declared a batch wedged;
//! * [`SortService`] is the front door: `submit` applies admission
//!   control and returns a [`Ticket`]; a dispatcher thread coalesces,
//!   runs, scatters, and records queue/batch/run/scatter spans in an
//!   [`obs::TraceSink`];
//! * [`ShardedService`] scales the same design *out*: a [`Router`]
//!   splits the request-size spectrum into bands, each band owning its
//!   own pool; idle shards steal aged batches from busy neighbors; and
//!   an [`Autoscaler`] resizes each pool from LogP-predicted queue
//!   drain time. [`ShardEngine`] is the identical policy stack under
//!   virtual time, for deterministic steal/scale tests;
//! * [`split`] lifts the shard layer from isolation to aggregate
//!   capacity: a request beyond every band is cut by one oversampled
//!   splitter-selection round into per-shard in-band sub-requests,
//!   each rides the normal admission/coalesce/pool path, and a k-way
//!   merge reassembles the ordered reply — any sub-request failure
//!   fails the parent with a structured [`BulkFailure`];
//! * [`net`] puts the whole thing behind a real socket: the `SORT_1`
//!   length-prefixed frame codec, a [`WireServer`] with per-connection
//!   reader threads whose stalls become structured [`Disconnect`]s, a
//!   blocking [`WireClient`] for loopback load tests, and deterministic
//!   connection-fault injection in [`net::chaos`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod autoscale;
pub mod coalescer;
pub mod config;
pub mod metrics;
pub mod net;
pub mod pool;
pub mod router;
pub mod server;
pub mod shard;
pub mod split;

pub use admission::Rejection;
pub use autoscale::{AutoscaleConfig, Autoscaler, ScaleVerdict};
pub use coalescer::{BatchCost, Coalescer, Verdict};
pub use config::{BulkConfig, ClassConfig, ServiceConfig, ShardedConfig};
pub use metrics::{ClassMetrics, ServiceMetrics};
pub use net::{
    Disconnect, FrameError, ReplyFrame, RequestFrame, WireClient, WireConfig, WireError,
    WireReport, WireServer, WireStats,
};
pub use pool::{PoolStats, WarmPool};
pub use router::{Router, SizeClass};
pub use server::{
    RecordKeys, RecordReply, RecordRequest, RecordTicket, ServiceReport, ServiceStats, SortError,
    SortRequest, SortService, Ticket,
};
pub use shard::{
    EngineEvent, ShardEngine, ShardStats, ShardedReport, ShardedService, ShardedStats,
};
pub use split::{BulkFailure, BulkReason, RecordPart, RecordSplitPlan, SplitPart, SplitPlan};
