//! The size-class router: which pool answers a request of `n` keys.
//!
//! The thesis's communication model makes cost a function of problem
//! *shape*: the remap count and volume of a batch depend on `lg n`
//! relative to `lg P`, so a pool tuned for one size class is mistuned
//! for every other. The router exploits that by binding each request to
//! the narrowest size band that admits it — small interactive sorts go
//! to a pool that flushes eagerly and stays warm on small padded
//! shapes, bulk sorts to a pool whose coalescer is willing to wait for
//! amortization. Routing is splitter-based like a sample sort's bucket
//! step (Blelloch et al.): the band bounds are the splitters, the
//! shards the buckets, and the decision is a binary scan of a handful
//! of bounds — pure and allocation-free.

use crate::admission::Rejection;
use crate::config::ShardedConfig;

/// One routable size band: requests of up to `max_keys` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeClass {
    /// Class name, mirrored from [`crate::ClassConfig::name`].
    pub name: String,
    /// Largest request (in keys) routed to this class.
    pub max_keys: usize,
}

/// Routes requests to shards by key count.
///
/// Bands are strictly increasing; a request routes to the *first* class
/// whose bound admits it, so every request lands in the narrowest band
/// that fits. Requests beyond the last band are unroutable (the caller
/// sheds them as too large).
#[derive(Debug, Clone)]
pub struct Router {
    classes: Vec<SizeClass>,
}

impl Router {
    /// Build the router for a sharded topology.
    ///
    /// # Panics
    /// Panics if `cfg` fails [`ShardedConfig::validate`].
    #[must_use]
    pub fn new(cfg: &ShardedConfig) -> Self {
        cfg.validate();
        Router {
            classes: cfg
                .classes
                .iter()
                .map(|c| SizeClass {
                    name: c.name.clone(),
                    max_keys: c.pool.max_request_keys,
                })
                .collect(),
        }
    }

    /// Number of shards routed to.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.classes.len()
    }

    /// The class routed to shard `shard`.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn class(&self, shard: usize) -> &SizeClass {
        &self.classes[shard]
    }

    /// The shard a `keys`-key request routes to, or `None` when the
    /// request exceeds every band (shed as too large by the caller).
    /// Empty requests route to the smallest class.
    #[must_use]
    pub fn route(&self, keys: usize) -> Option<usize> {
        self.classes.iter().position(|c| keys <= c.max_keys)
    }

    /// The largest request any shard admits.
    #[must_use]
    pub fn max_keys(&self) -> usize {
        self.classes.last().map_or(0, |c| c.max_keys)
    }

    /// The rejection for a `keys`-key request beyond every band. Both
    /// shed paths (live service and virtual-time engine) build their
    /// `TooLarge` here so the reported limit is always the *widest*
    /// admitting band — the wire `detail` fields stay consistent no
    /// matter which path shed the request.
    #[must_use]
    pub fn too_large(&self, keys: usize) -> Rejection {
        Rejection::TooLarge {
            keys,
            limit: self.max_keys(),
        }
    }

    /// The per-band key capacities, in shard order — the weights the
    /// splitter selector uses to give each shard a share of a bulk
    /// request proportional to what its band admits.
    #[must_use]
    pub fn band_capacities(&self) -> Vec<usize> {
        self.classes.iter().map(|c| c.max_keys).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClassConfig, ServiceConfig};

    fn router() -> Router {
        let base = ServiceConfig::new(4);
        Router::new(&ShardedConfig {
            classes: vec![
                ClassConfig::new("small", 64, base),
                ClassConfig::new("medium", 1024, base),
                ClassConfig::new("bulk", 16384, base),
            ],
            steal_after: None,
            autoscale: None,
            trace: obs::TraceConfig::off(),
            bulk: crate::config::BulkConfig::default(),
        })
    }

    #[test]
    fn requests_route_to_the_narrowest_admitting_band() {
        let r = router();
        assert_eq!(r.route(0), Some(0), "empty requests go to the smallest");
        assert_eq!(r.route(1), Some(0));
        assert_eq!(r.route(64), Some(0), "bounds are inclusive");
        assert_eq!(r.route(65), Some(1));
        assert_eq!(r.route(1024), Some(1));
        assert_eq!(r.route(1025), Some(2));
        assert_eq!(r.route(16384), Some(2));
        assert_eq!(r.route(16385), None, "beyond the last band is unroutable");
        assert_eq!(r.shards(), 3);
        assert_eq!(r.max_keys(), 16384);
        assert_eq!(r.class(0).name, "small");
    }

    #[test]
    fn too_large_reports_the_widest_band_limit() {
        let r = router();
        assert_eq!(
            r.too_large(99_999),
            Rejection::TooLarge {
                keys: 99_999,
                limit: 16384
            }
        );
        assert_eq!(r.band_capacities(), vec![64, 1024, 16384]);
    }

    #[test]
    #[should_panic(expected = "must exceed the previous band")]
    fn non_increasing_bands_are_rejected() {
        let base = ServiceConfig::new(4);
        let _ = Router::new(&ShardedConfig {
            classes: vec![
                ClassConfig::new("a", 1024, base),
                ClassConfig::new("b", 64, base),
            ],
            steal_after: None,
            autoscale: None,
            trace: obs::TraceConfig::off(),
            bulk: crate::config::BulkConfig::default(),
        });
    }

    #[test]
    fn the_banded_preset_covers_the_default_request_range() {
        let cfg = ShardedConfig::banded(4, 2);
        let r = Router::new(&cfg);
        assert_eq!(r.shards(), 2);
        assert_eq!(r.class(0).name, "small");
        assert_eq!(r.class(1).name, "bulk");
        let single = ServiceConfig::new(4);
        assert_eq!(
            r.max_keys(),
            single.max_request_keys,
            "sharding must not shrink the admissible request range"
        );
        assert_eq!(cfg.total_machines(), 2);
    }
}
