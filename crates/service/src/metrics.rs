//! Service-side metric handles: every counter, gauge, and histogram the
//! serving stack exports, registered once per service instance.
//!
//! Each [`crate::SortService`] / [`crate::ShardedService`] owns one
//! [`ServiceMetrics`] (when [`crate::ServiceConfig::metrics`] is on)
//! backed by its own `obs::metrics::Registry` — instances are isolated,
//! so parallel tests never cross-contaminate and registry totals
//! reconcile *exactly* against that instance's `ServiceStats`/`PoolStats`
//! (conformance-tested in `tests/metrics.rs`). Per-class handles live in
//! [`ClassMetrics`]; the sharded service registers one set per size
//! class, all labelled `class="<name>"` in the shared registry.
//!
//! Naming follows Prometheus conventions under a `bitonic_` prefix:
//! counters end in `_total`, histograms carry their unit (`_us`, keys),
//! labels are `class`, `reason` (admission), `verdict` (coalescer),
//! `direction` (autoscaler), `kernel` (local sorts). See DESIGN.md §10.

use crate::coalescer::BatchCost;
use crate::config::{ServiceConfig, ShardedConfig};
use obs::metrics::{Counter, DriftGauge, Gauge, Histogram, Registry, SloTracker, Snapshot};
use spmd::CommStats;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// SLO window length; the tracker aggregates [`SLO_SLOTS`] of these.
const SLO_WINDOW: Duration = Duration::from_secs(1);
/// Rolling SLO horizon in windows.
const SLO_SLOTS: usize = 10;

/// Metric handles for one size class (the single-pool service is one
/// class named `"all"`). All fields are pre-registered `Arc` handles, so
/// request-path updates are single relaxed atomic ops.
pub struct ClassMetrics {
    class: String,
    registry: Arc<Registry>,
    started: Instant,
    cost: BatchCost,
    /// Requests offered to `submit`.
    pub(crate) submitted: Arc<Counter>,
    /// Requests past admission control.
    pub(crate) admitted: Arc<Counter>,
    /// Sheds by [`crate::Rejection::label`]: closed, too_large,
    /// queue_full, queue_overflow, deadline_unmeetable.
    shed: [Arc<Counter>; 5],
    /// Requests that expired in the queue.
    pub(crate) expired: Arc<Counter>,
    /// Requests lost to machine failures.
    pub(crate) failed: Arc<Counter>,
    /// Requests answered.
    pub(crate) completed: Arc<Counter>,
    /// Batches taken off the queue (including all-expired ones).
    pub(crate) batches: Arc<Counter>,
    /// Coalescer flush verdicts.
    pub(crate) verdict_flush: Arc<Counter>,
    /// Coalescer wait verdicts.
    pub(crate) verdict_wait: Arc<Counter>,
    /// Batches claimed from a neighbor's queue.
    pub(crate) steals: Arc<Counter>,
    /// Requests moved by those steals.
    pub(crate) stolen_requests: Arc<Counter>,
    /// Autoscaler grow events.
    pub(crate) scale_ups: Arc<Counter>,
    /// Autoscaler shrink events.
    pub(crate) scale_downs: Arc<Counter>,
    /// Plan-cache hits summed over ranks and batches.
    pub(crate) plan_hits: Arc<Counter>,
    /// Plan-cache misses summed over ranks and batches.
    pub(crate) plan_misses: Arc<Counter>,
    /// Lifetime plan-cache hit rate in `[0, 1]`, refreshed per batch.
    pub(crate) plan_hit_rate: Arc<Gauge>,
    /// Machines replaced after a failed batch.
    pub(crate) machines_rebuilt: Arc<Counter>,
    /// Injected fault events (drops/dups/reorders/jitter/stalls).
    pub(crate) faults_injected: Arc<Counter>,
    /// ARQ retransmissions in response to nacks.
    pub(crate) arq_retries: Arc<Counter>,
    /// Live queue depth (requests).
    pub(crate) queue_depth: Arc<Gauge>,
    /// Live queued keys.
    pub(crate) queue_keys: Arc<Gauge>,
    /// Warm machines in the pool right now.
    pub(crate) pool_machines: Arc<Gauge>,
    /// End-to-end request latency (enqueue → reply), microseconds.
    pub(crate) latency_us: Arc<Histogram>,
    /// Age of each request when its batch formed, microseconds.
    pub(crate) queue_wait_us: Arc<Histogram>,
    /// Useful (unpadded) keys per batch.
    pub(crate) batch_keys: Arc<Histogram>,
    /// Requests per batch.
    pub(crate) batch_requests: Arc<Histogram>,
    /// Payload bytes carried per completed record request.
    pub(crate) record_payload_bytes: Arc<Histogram>,
    /// Rolling-window SLO state for this class.
    pub(crate) slo: SloTracker,
    /// EWMA of measured/LogP-predicted batch runtime.
    pub(crate) drift: DriftGauge,
}

impl ClassMetrics {
    fn new(registry: &Arc<Registry>, started: Instant, class: &str, cfg: &ServiceConfig) -> Self {
        let r = registry.as_ref();
        let l = &[("class", class)][..];
        let shed_reason = |reason| {
            r.counter(
                "bitonic_requests_shed_total",
                "Requests refused at admission, by reason",
                &[("class", class), ("reason", reason)],
            )
        };
        ClassMetrics {
            class: class.to_string(),
            registry: registry.clone(),
            started,
            cost: BatchCost::new(cfg.procs),
            submitted: r.counter(
                "bitonic_requests_submitted_total",
                "Requests offered to submit()",
                l,
            ),
            admitted: r.counter(
                "bitonic_requests_admitted_total",
                "Requests past admission control",
                l,
            ),
            shed: [
                shed_reason("closed"),
                shed_reason("too_large"),
                shed_reason("queue_full"),
                shed_reason("queue_overflow"),
                shed_reason("deadline_unmeetable"),
            ],
            expired: r.counter(
                "bitonic_requests_expired_total",
                "Requests that outlived their deadline in the queue",
                l,
            ),
            failed: r.counter(
                "bitonic_requests_failed_total",
                "Requests lost to machine failures",
                l,
            ),
            completed: r.counter(
                "bitonic_requests_completed_total",
                "Requests answered with sorted keys",
                l,
            ),
            batches: r.counter("bitonic_batches_total", "Batches taken off the queue", l),
            verdict_flush: r.counter(
                "bitonic_coalescer_verdicts_total",
                "Coalescer decisions, by verdict",
                &[("class", class), ("verdict", "flush")],
            ),
            verdict_wait: r.counter(
                "bitonic_coalescer_verdicts_total",
                "Coalescer decisions, by verdict",
                &[("class", class), ("verdict", "wait")],
            ),
            steals: r.counter(
                "bitonic_steals_total",
                "Batches stolen from a neighbor's queue",
                l,
            ),
            stolen_requests: r.counter(
                "bitonic_stolen_requests_total",
                "Requests moved by work stealing",
                l,
            ),
            scale_ups: r.counter(
                "bitonic_scale_events_total",
                "Autoscaler resize events, by direction",
                &[("class", class), ("direction", "up")],
            ),
            scale_downs: r.counter(
                "bitonic_scale_events_total",
                "Autoscaler resize events, by direction",
                &[("class", class), ("direction", "down")],
            ),
            plan_hits: r.counter(
                "bitonic_plan_cache_hits_total",
                "Remap-plan cache hits over all ranks and batches",
                l,
            ),
            plan_misses: r.counter(
                "bitonic_plan_cache_misses_total",
                "Remap-plan cache misses over all ranks and batches",
                l,
            ),
            plan_hit_rate: r.gauge(
                "bitonic_plan_cache_hit_rate",
                "Lifetime plan-cache hit rate in [0, 1]",
                l,
            ),
            machines_rebuilt: r.counter(
                "bitonic_machines_rebuilt_total",
                "Pool machines replaced after a failed batch",
                l,
            ),
            faults_injected: r.counter(
                "bitonic_faults_injected_total",
                "Injected fault events across pool ranks",
                l,
            ),
            arq_retries: r.counter(
                "bitonic_arq_retries_total",
                "ARQ retransmissions across pool ranks",
                l,
            ),
            queue_depth: r.gauge("bitonic_queue_depth", "Requests waiting in the queue", l),
            queue_keys: r.gauge("bitonic_queue_keys", "Keys waiting in the queue", l),
            pool_machines: r.gauge("bitonic_pool_machines", "Warm machines in the pool", l),
            latency_us: r.histogram(
                "bitonic_request_latency_us",
                "End-to-end request latency (enqueue to reply)",
                l,
            ),
            queue_wait_us: r.histogram(
                "bitonic_queue_wait_us",
                "Request age when its batch formed",
                l,
            ),
            batch_keys: r.histogram("bitonic_batch_keys", "Useful keys per batch", l),
            batch_requests: r.histogram("bitonic_batch_requests", "Requests per batch", l),
            record_payload_bytes: r.histogram(
                "bitonic_record_payload_bytes",
                "Payload bytes carried per completed record request",
                l,
            ),
            slo: SloTracker::new(SLO_WINDOW, SLO_SLOTS, cfg.default_deadline),
            drift: DriftGauge::default(),
        }
    }

    /// Elapsed time since the owning service started (the SLO clock).
    pub(crate) fn now(&self) -> Duration {
        self.started.elapsed()
    }

    /// Batch cost model used for the drift gauge's predictions.
    pub(crate) fn cost(&self) -> &BatchCost {
        &self.cost
    }

    /// Count one shed with the rejection's reason label and SLO impact.
    pub(crate) fn record_shed(&self, rejection: &crate::Rejection) {
        let idx = match rejection {
            crate::Rejection::Closed => 0,
            crate::Rejection::TooLarge { .. } => 1,
            crate::Rejection::QueueFull { .. } => 2,
            crate::Rejection::QueueOverflow { .. } => 3,
            crate::Rejection::DeadlineUnmeetable { .. } => 4,
        };
        self.shed[idx].inc();
        self.slo.record_shed(self.now());
    }

    /// Refresh the queue gauges from a queue snapshot.
    pub(crate) fn set_queue(&self, depth: usize, keys: usize) {
        self.queue_depth.set(depth as f64);
        self.queue_keys.set(keys as f64);
    }

    /// Fold one rank's per-batch [`CommStats`] into the registry: plan
    /// cache traffic, fault/ARQ counters, and local-kernel tallies.
    pub(crate) fn record_rank_stats(&self, stats: &CommStats) {
        self.plan_hits.add(stats.plan_hits);
        self.plan_misses.add(stats.plan_misses);
        let hits = self.plan_hits.get();
        let total = hits + self.plan_misses.get();
        if total > 0 {
            self.plan_hit_rate.set(hits as f64 / total as f64);
        }
        self.faults_injected.add(stats.faults.total_injected());
        self.arq_retries.add(stats.faults.retries);
        for &(name, count) in &stats.local_kernels {
            self.registry
                .counter(
                    "bitonic_local_kernel_invocations_total",
                    "Local-phase kernel invocations, by kernel",
                    &[("class", &self.class), ("kernel", name)],
                )
                .add(count);
        }
    }

    /// Count one completed record request: the per-width counter plus
    /// the payload-bytes histogram. Width is the key width in bytes.
    pub(crate) fn record_record_request(&self, width: u8, payload_bytes: u64) {
        let width = match width {
            4 => "4",
            8 => "8",
            _ => "16",
        };
        self.registry
            .counter(
                "bitonic_record_requests_total",
                "Record requests completed, by key width in bytes",
                &[("class", &self.class), ("width", width)],
            )
            .inc();
        self.record_payload_bytes.observe(payload_bytes);
    }

    /// Total sheds across all reasons (for brief reports).
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().map(|c| c.get()).sum()
    }
}

/// The live metrics plane of one service instance: a private registry
/// plus per-class handles. Snapshots stamp the SLO and drift state into
/// gauges first, so every export path (Prometheus text, `METRICS_1`
/// JSON, `--metrics-every` briefs) sees the same derived values.
pub struct ServiceMetrics {
    registry: Arc<Registry>,
    started: Instant,
    /// Requests no class band admits (sharded router only).
    pub(crate) unroutable: Arc<Counter>,
    /// Over-band requests admitted through the bulk split path.
    pub(crate) bulk_submitted: Arc<Counter>,
    /// Bulk requests answered with a merged sorted reply.
    pub(crate) bulk_completed: Arc<Counter>,
    /// Bulk requests failed by a sub-request (shed/expired/failed).
    pub(crate) bulk_failed: Arc<Counter>,
    /// Per-shard sub-requests scattered by bulk splits.
    pub(crate) bulk_parts: Arc<Counter>,
    /// Keys sampled by splitter selection, summed over bulk requests.
    pub(crate) bulk_samples: Arc<Counter>,
    /// Partition skew (observed/fair-share keys) per partition, in
    /// permille — 1000 is a perfectly fair cut.
    pub(crate) bulk_skew_permille: Arc<Histogram>,
    /// k-way merge latency per completed bulk request, microseconds.
    pub(crate) bulk_merge_us: Arc<Histogram>,
    classes: Vec<Arc<ClassMetrics>>,
}

impl std::fmt::Debug for ServiceMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceMetrics")
            .field("classes", &self.classes.len())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for ClassMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassMetrics")
            .field("class", &self.class)
            .finish_non_exhaustive()
    }
}

impl ServiceMetrics {
    fn build(class_cfgs: &[(&str, &ServiceConfig)]) -> Arc<Self> {
        let registry = Arc::new(Registry::new());
        let started = Instant::now();
        let classes = class_cfgs
            .iter()
            .map(|(name, cfg)| Arc::new(ClassMetrics::new(&registry, started, name, cfg)))
            .collect();
        let unroutable = registry.counter(
            "bitonic_requests_unroutable_total",
            "Requests no size-class band admits",
            &[],
        );
        let bulk_submitted = registry.counter(
            "bitonic_bulk_requests_total",
            "Over-band requests admitted through the bulk split path",
            &[],
        );
        let bulk_completed = registry.counter(
            "bitonic_bulk_completed_total",
            "Bulk requests answered with a merged sorted reply",
            &[],
        );
        let bulk_failed = registry.counter(
            "bitonic_bulk_failed_total",
            "Bulk requests failed by a sub-request",
            &[],
        );
        let bulk_parts = registry.counter(
            "bitonic_bulk_partitions_total",
            "Per-shard sub-requests scattered by bulk splits",
            &[],
        );
        let bulk_samples = registry.counter(
            "bitonic_bulk_splitter_samples_total",
            "Keys sampled by splitter selection",
            &[],
        );
        let bulk_skew_permille = registry.histogram(
            "bitonic_bulk_partition_skew_permille",
            "Partition keys over fair share, per partition (1000 = fair)",
            &[],
        );
        let bulk_merge_us = registry.histogram(
            "bitonic_bulk_merge_us",
            "k-way merge latency per completed bulk request",
            &[],
        );
        Arc::new(ServiceMetrics {
            registry,
            started,
            unroutable,
            bulk_submitted,
            bulk_completed,
            bulk_failed,
            bulk_parts,
            bulk_samples,
            bulk_skew_permille,
            bulk_merge_us,
            classes,
        })
    }

    /// Metrics for a single-pool service: one class named `"all"`.
    #[must_use]
    pub fn for_single(cfg: &ServiceConfig) -> Arc<Self> {
        Self::build(&[("all", cfg)])
    }

    /// Metrics for a sharded service: one class per configured band.
    #[must_use]
    pub fn for_sharded(cfg: &ShardedConfig) -> Arc<Self> {
        let classes: Vec<(&str, &ServiceConfig)> = cfg
            .classes
            .iter()
            .map(|c| (c.name.as_str(), &c.pool))
            .collect();
        Self::build(&classes)
    }

    /// Handles for class `i` (class 0 on the single-pool service).
    #[must_use]
    pub fn class(&self, i: usize) -> &Arc<ClassMetrics> {
        &self.classes[i]
    }

    /// Number of registered classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes.len()
    }

    /// Elapsed time since the service started.
    #[must_use]
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stamp SLO and drift state into gauges, then snapshot the whole
    /// registry.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let now = self.started.elapsed();
        for class in &self.classes {
            let l = &[("class", class.class.as_str())][..];
            let slo = class.slo.snapshot(now);
            let r = self.registry.as_ref();
            r.gauge("bitonic_slo_p50_us", "Rolling-window p50 latency", l)
                .set(slo.p50_us as f64);
            r.gauge("bitonic_slo_p95_us", "Rolling-window p95 latency", l)
                .set(slo.p95_us as f64);
            r.gauge("bitonic_slo_p99_us", "Rolling-window p99 latency", l)
                .set(slo.p99_us as f64);
            r.gauge(
                "bitonic_slo_shed_rate",
                "Rolling-window shed fraction of offered load",
                l,
            )
            .set(slo.shed_rate);
            r.gauge(
                "bitonic_slo_error_rate",
                "Rolling-window expired+failed fraction of offered load",
                l,
            )
            .set(slo.error_rate);
            r.gauge(
                "bitonic_slo_within_budget",
                "1 when rolling p99 is inside the deadline budget",
                l,
            )
            .set(f64::from(u8::from(slo.within_budget)));
            r.gauge(
                "bitonic_slo_budget_us",
                "Latency budget the SLO grades against",
                l,
            )
            .set(class.slo.budget().as_micros() as f64);
            r.gauge(
                "bitonic_logp_drift_ratio",
                "EWMA of measured over LogP-predicted batch runtime",
                l,
            )
            .set(class.drift.ratio());
        }
        self.registry.snapshot()
    }

    /// Render the current state in Prometheus text exposition format.
    #[must_use]
    pub fn prometheus(&self) -> String {
        obs::metrics::encode_prometheus(&self.snapshot())
    }

    /// Wire-frontend handles registered in this instance's registry, so
    /// one snapshot reconciles socket counters against request counters.
    pub(crate) fn wire_handles(&self) -> WireMetrics {
        WireMetrics::new(&self.registry)
    }

    /// One compact line per class — what `serve --metrics-every` prints.
    #[must_use]
    pub fn brief(&self) -> String {
        let now = self.started.elapsed();
        let mut out = String::new();
        for class in &self.classes {
            let slo = class.slo.snapshot(now);
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "[metrics] class={} queued={} machines={} done={} shed={} expired={} \
                 failed={} p50_us={} p99_us={} shed_rate={:.3} drift={:.3}",
                class.class,
                class.queue_depth.get() as u64,
                class.pool_machines.get() as u64,
                class.completed.get(),
                class.shed_total(),
                class.expired.get(),
                class.failed.get(),
                slo.p50_us,
                slo.p99_us,
                slo.shed_rate,
                class.drift.ratio(),
            ));
        }
        let unroutable = self.unroutable.get();
        if unroutable > 0 {
            out.push_str(&format!("\n[metrics] unroutable={unroutable}"));
        }
        let bulk = self.bulk_submitted.get();
        if bulk > 0 {
            out.push_str(&format!(
                "\n[metrics] bulk={} bulk_done={} bulk_failed={}",
                bulk,
                self.bulk_completed.get(),
                self.bulk_failed.get(),
            ));
        }
        out.push('\n');
        out
    }
}

/// Metric handles for the TCP wire frontend, registered in the owning
/// service's registry under `bitonic_wire_*` names. Labeled series
/// (replies by status, rejections/disconnects/frame errors by reason)
/// go through the registry's idempotent get-or-create path, so the hot
/// unlabeled counters stay single relaxed atomics while the per-reason
/// ones pay one registry lookup per event — events, not bytes.
pub struct WireMetrics {
    registry: Arc<Registry>,
    /// Open connections right now.
    pub(crate) connections: Arc<Gauge>,
    /// Connections accepted over the service's lifetime.
    pub(crate) connections_total: Arc<Counter>,
    /// Well-formed request frames accepted for submission.
    pub(crate) frames_total: Arc<Counter>,
    /// Bytes read off all sockets.
    pub(crate) bytes_read_total: Arc<Counter>,
    /// Bytes written to all sockets.
    pub(crate) bytes_written_total: Arc<Counter>,
}

impl std::fmt::Debug for WireMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireMetrics").finish_non_exhaustive()
    }
}

impl WireMetrics {
    fn new(registry: &Arc<Registry>) -> Self {
        let r = registry.as_ref();
        WireMetrics {
            registry: registry.clone(),
            connections: r.gauge("bitonic_wire_connections", "Open TCP connections", &[]),
            connections_total: r.counter(
                "bitonic_wire_connections_total",
                "TCP connections accepted",
                &[],
            ),
            frames_total: r.counter(
                "bitonic_wire_frames_total",
                "Well-formed request frames accepted for submission",
                &[],
            ),
            bytes_read_total: r.counter("bitonic_wire_bytes_read_total", "Bytes read", &[]),
            bytes_written_total: r.counter(
                "bitonic_wire_bytes_written_total",
                "Bytes written",
                &[],
            ),
        }
    }

    /// Count one reply by its status label; rejections additionally
    /// stamp `bitonic_wire_rejections_total{reason=...}`, the series the
    /// conformance suite reconciles against
    /// `bitonic_requests_shed_total{reason=...}`.
    pub(crate) fn record_reply(&self, label: &'static str, is_rejection: bool) {
        self.registry
            .counter(
                "bitonic_wire_replies_total",
                "Replies written, by status",
                &[("status", label)],
            )
            .inc();
        if is_rejection {
            self.registry
                .counter(
                    "bitonic_wire_rejections_total",
                    "Rejection replies, by admission reason",
                    &[("reason", label)],
                )
                .inc();
        }
    }

    /// Count one malformed frame by its [`crate::net::FrameError::label`].
    pub(crate) fn record_frame_error(&self, label: &'static str) {
        self.registry
            .counter(
                "bitonic_wire_frame_errors_total",
                "Malformed frames, by error class",
                &[("reason", label)],
            )
            .inc();
    }

    /// Count one connection close by its
    /// [`crate::net::Disconnect::label`].
    pub(crate) fn record_disconnect(&self, label: &'static str) {
        self.registry
            .counter(
                "bitonic_wire_disconnects_total",
                "Connection closes, by reason",
                &[("reason", label)],
            )
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_metrics_share_the_service_registry() {
        let cfg = ServiceConfig::new(2);
        let m = ServiceMetrics::for_single(&cfg);
        let w = m.wire_handles();
        w.connections_total.inc();
        w.frames_total.add(3);
        w.record_reply("ok", false);
        w.record_reply("queue_full", true);
        w.record_frame_error("bad_magic");
        w.record_disconnect("read_stall");
        let snap = m.snapshot();
        assert_eq!(snap.counter_total("bitonic_wire_connections_total"), 1);
        assert_eq!(snap.counter_total("bitonic_wire_frames_total"), 3);
        assert_eq!(
            snap.counter_labeled("bitonic_wire_replies_total", "status", "ok"),
            1
        );
        assert_eq!(
            snap.counter_labeled("bitonic_wire_rejections_total", "reason", "queue_full"),
            1
        );
        assert_eq!(
            snap.counter_labeled("bitonic_wire_frame_errors_total", "reason", "bad_magic"),
            1
        );
        assert_eq!(
            snap.counter_labeled("bitonic_wire_disconnects_total", "reason", "read_stall"),
            1
        );
    }

    #[test]
    fn single_service_metrics_register_and_snapshot() {
        let cfg = ServiceConfig::new(4);
        let m = ServiceMetrics::for_single(&cfg);
        let c = m.class(0);
        c.submitted.inc();
        c.record_shed(&crate::Rejection::Closed);
        c.latency_us.observe(120);
        c.slo.record_latency(c.now(), Duration::from_micros(120));
        let snap = m.snapshot();
        assert_eq!(
            snap.counter_labeled("bitonic_requests_submitted_total", "class", "all"),
            1
        );
        assert_eq!(
            snap.counter_labeled("bitonic_requests_shed_total", "reason", "closed"),
            1
        );
        assert_eq!(snap.histogram_count("bitonic_request_latency_us"), 1);
        assert!(snap
            .gauge_labeled("bitonic_slo_p99_us", "class", "all")
            .is_some());
        assert!(m.brief().contains("class=all"));
    }

    #[test]
    fn sharded_metrics_are_labelled_per_class() {
        let cfg = ShardedConfig::banded(4, 2);
        let m = ServiceMetrics::for_sharded(&cfg);
        assert_eq!(m.classes(), 2);
        m.class(0).submitted.inc();
        m.class(1).submitted.add(2);
        m.unroutable.inc();
        let snap = m.snapshot();
        assert_eq!(
            snap.counter_labeled("bitonic_requests_submitted_total", "class", "small"),
            1
        );
        assert_eq!(
            snap.counter_labeled("bitonic_requests_submitted_total", "class", "bulk"),
            2
        );
        assert_eq!(snap.counter_total("bitonic_requests_unroutable_total"), 1);
    }

    #[test]
    fn rank_stats_fold_kernels_and_faults() {
        let cfg = ServiceConfig::new(2);
        let m = ServiceMetrics::for_single(&cfg);
        let mut stats = CommStats::new();
        stats.plan_hits = 3;
        stats.plan_misses = 1;
        stats.faults.retries = 2;
        stats.faults.drops_injected = 5;
        stats.note_kernel("radix", 4);
        m.class(0).record_rank_stats(&stats);
        let snap = m.snapshot();
        assert_eq!(snap.counter_total("bitonic_plan_cache_hits_total"), 3);
        assert_eq!(snap.counter_total("bitonic_plan_cache_misses_total"), 1);
        let rate = snap
            .gauge_labeled("bitonic_plan_cache_hit_rate", "class", "all")
            .expect("hit-rate gauge registered");
        assert!((rate - 0.75).abs() < 1e-9, "rate {rate}");
        assert_eq!(snap.counter_total("bitonic_arq_retries_total"), 2);
        assert_eq!(snap.counter_total("bitonic_faults_injected_total"), 5);
        assert_eq!(
            snap.counter_labeled("bitonic_local_kernel_invocations_total", "kernel", "radix"),
            4
        );
    }
}
