//! Predictive autoscaling: machine counts from LogP-predicted drain time.
//!
//! Reactive autoscalers watch latency and act after the damage; this one
//! runs the thesis's cost model *forward*. A shard's backlog of
//! `queued_keys` keys drains in waves — each wave runs up to `machines`
//! batches concurrently, each batch costing
//! [`BatchCost::predicted_run`] model time — so the policy can predict
//! time-to-drain from the queue snapshot alone, before any request is
//! late. When the prediction overshoots the class's deadline budget the
//! pool grows; after sustained idleness it shrinks, never below the
//! configured floor (at least one machine: a pool that scaled to zero
//! could not serve the request that wakes it).
//!
//! The policy is pure and clocked by a caller-supplied `now` (time since
//! service start), so unit tests drive whole grow/shrink cycles with a
//! mock clock and no sleeping.

use crate::coalescer::BatchCost;
use crate::config::ServiceConfig;
use std::time::Duration;

/// Autoscaler shape: bounds, trigger threshold, and damping.
#[derive(Debug, Clone, Copy)]
pub struct AutoscaleConfig {
    /// Smallest pool the scaler will shrink to. Must be at least one —
    /// the serving floor.
    pub min_machines: usize,
    /// Largest pool the scaler will grow to.
    pub max_machines: usize,
    /// Grow when predicted drain time exceeds this fraction of the
    /// class's deadline budget. Below 1.0 the pool grows *before* the
    /// budget is spent (headroom); 1.0 grows exactly at the budget.
    pub headroom: f64,
    /// Shrink only after the shard's queue has been continuously empty
    /// for this long — a quiet patch, not a momentary gap.
    pub idle_before_shrink: Duration,
    /// Minimum spacing between scaling actions, so one burst cannot
    /// thrash the pool up and down.
    pub cooldown: Duration,
}

impl AutoscaleConfig {
    /// Defaults: 1–4 machines, grow at 50% of the deadline budget,
    /// shrink after 50 ms of continuous idleness, 10 ms cooldown.
    #[must_use]
    pub fn new() -> Self {
        AutoscaleConfig {
            min_machines: 1,
            max_machines: 4,
            headroom: 0.5,
            idle_before_shrink: Duration::from_millis(50),
            cooldown: Duration::from_millis(10),
        }
    }

    /// Panic unless the configuration is usable.
    pub fn validate(&self) {
        assert!(self.min_machines >= 1, "the serving floor is one machine");
        assert!(
            self.max_machines >= self.min_machines,
            "max_machines must admit the floor"
        );
        assert!(
            self.headroom > 0.0 && self.headroom.is_finite(),
            "headroom is a positive fraction of the deadline budget"
        );
    }
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// What the shard should do with its pool right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleVerdict {
    /// Keep the current machine count.
    Hold,
    /// Add one machine (predicted drain overshoots the budget).
    Grow,
    /// Retire one machine (sustained idleness).
    Shrink,
}

/// The per-shard scaling policy. One instance per shard; feed it queue
/// snapshots via [`Autoscaler::assess`] and apply the verdicts to the
/// pool. Deterministic: identical snapshot sequences yield identical
/// verdict sequences.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    cost: BatchCost,
    max_batch_keys: usize,
    /// The class's deadline budget: requests without their own deadline
    /// must finish within this, so drain predictions are judged against it.
    budget: Duration,
    last_action: Option<Duration>,
    idle_since: Option<Duration>,
}

impl Autoscaler {
    /// Policy for one shard whose pool runs `class` under `cfg`.
    #[must_use]
    pub fn new(class: &ServiceConfig, cfg: AutoscaleConfig) -> Self {
        cfg.validate();
        Autoscaler {
            cfg,
            cost: BatchCost::new(class.procs),
            max_batch_keys: class.max_batch_keys,
            budget: class.default_deadline,
            last_action: None,
            idle_since: None,
        }
    }

    /// Predicted model time to drain `queued_keys` keys with `machines`
    /// concurrent machines: full batches, run in waves of `machines`.
    #[must_use]
    pub fn predicted_drain(&self, queued_keys: usize, machines: usize) -> Duration {
        if queued_keys == 0 {
            return Duration::ZERO;
        }
        let batches = queued_keys.div_ceil(self.max_batch_keys);
        let waves = batches.div_ceil(machines.max(1));
        let batch_keys = queued_keys.min(self.max_batch_keys);
        let per_wave = self.cost.predicted_run(batch_keys);
        per_wave * waves as u32
    }

    /// The configured bounds.
    #[must_use]
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// Judge the shard's queue at `now` (time since service start) and
    /// return the scaling verdict. The caller is expected to *apply*
    /// `Grow`/`Shrink` to its pool; the policy assumes it does and arms
    /// the cooldown accordingly.
    pub fn assess(&mut self, now: Duration, queued_keys: usize, machines: usize) -> ScaleVerdict {
        self.assess_with_drift(now, queued_keys, machines, 1.0)
    }

    /// [`Autoscaler::assess`] with a live drift correction: the metrics
    /// plane's EWMA of measured/predicted batch runtime scales the drain
    /// prediction, so a machine running slower than the LogP model says
    /// (drift > 1) grows earlier, and an optimistic model does not hold
    /// the pool oversized. A drift of exactly 1.0 is the plain model.
    pub fn assess_with_drift(
        &mut self,
        now: Duration,
        queued_keys: usize,
        machines: usize,
        drift: f64,
    ) -> ScaleVerdict {
        // Idle tracking runs even inside the cooldown window, so a quiet
        // patch that starts during cooldown still counts in full.
        if queued_keys == 0 {
            self.idle_since.get_or_insert(now);
        } else {
            self.idle_since = None;
        }
        if let Some(at) = self.last_action {
            if now.saturating_sub(at) < self.cfg.cooldown {
                return ScaleVerdict::Hold;
            }
        }
        if queued_keys > 0 && machines < self.cfg.max_machines {
            let mut drain = self.predicted_drain(queued_keys, machines);
            if drift.is_finite() && drift > 0.0 {
                drain = drain.mul_f64(drift);
            }
            let threshold = self.budget.mul_f64(self.cfg.headroom);
            if drain > threshold {
                self.last_action = Some(now);
                return ScaleVerdict::Grow;
            }
        }
        if machines > self.cfg.min_machines {
            if let Some(since) = self.idle_since {
                if now.saturating_sub(since) >= self.cfg.idle_before_shrink {
                    self.last_action = Some(now);
                    // Restart the idle window: each further shrink needs
                    // its own sustained quiet patch.
                    self.idle_since = Some(now);
                    return ScaleVerdict::Shrink;
                }
            }
        }
        ScaleVerdict::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A class whose deadline budget is tiny, so any real backlog
    /// overshoots it regardless of the cost model's absolute scale.
    fn tight_class() -> ServiceConfig {
        let mut cfg = ServiceConfig::new(4);
        cfg.max_batch_keys = 1 << 10;
        cfg.default_deadline = Duration::from_micros(50);
        cfg
    }

    fn scaler(class: &ServiceConfig) -> Autoscaler {
        Autoscaler::new(
            class,
            AutoscaleConfig {
                min_machines: 1,
                max_machines: 3,
                headroom: 0.5,
                idle_before_shrink: Duration::from_millis(5),
                cooldown: Duration::from_millis(2),
            },
        )
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn predicted_drain_shrinks_with_machines_and_is_zero_when_empty() {
        let class = tight_class();
        let a = scaler(&class);
        assert_eq!(a.predicted_drain(0, 1), Duration::ZERO);
        let one = a.predicted_drain(1 << 13, 1);
        let two = a.predicted_drain(1 << 13, 2);
        assert!(one > Duration::ZERO);
        assert!(two < one, "more machines drain faster: {two:?} vs {one:?}");
    }

    #[test]
    fn drain_overshoot_grows_the_pool() {
        let class = tight_class();
        let mut a = scaler(&class);
        // A deep backlog against a 50 µs budget: grow immediately.
        assert_eq!(a.assess(ms(0), 1 << 13, 1), ScaleVerdict::Grow);
    }

    #[test]
    fn cooldown_spaces_consecutive_grows() {
        let class = tight_class();
        let mut a = scaler(&class);
        assert_eq!(a.assess(ms(0), 1 << 13, 1), ScaleVerdict::Grow);
        // Still overloaded, but inside the 2 ms cooldown.
        assert_eq!(a.assess(ms(1), 1 << 13, 2), ScaleVerdict::Hold);
        // Past the cooldown the next step is granted.
        assert_eq!(a.assess(ms(3), 1 << 13, 2), ScaleVerdict::Grow);
    }

    #[test]
    fn the_pool_never_grows_past_max() {
        let class = tight_class();
        let mut a = scaler(&class);
        assert_eq!(
            a.assess(ms(0), 1 << 13, 3),
            ScaleVerdict::Hold,
            "at max_machines the verdict is Hold no matter the backlog"
        );
    }

    #[test]
    fn sustained_idleness_shrinks_but_a_blip_resets_the_clock() {
        let class = tight_class();
        let mut a = scaler(&class);
        assert_eq!(a.assess(ms(0), 0, 2), ScaleVerdict::Hold);
        // 4 ms idle: not yet the 5 ms threshold.
        assert_eq!(a.assess(ms(4), 0, 2), ScaleVerdict::Hold);
        // A burst arrives: the idle clock resets.
        assert_eq!(a.assess(ms(5), 16, 2), ScaleVerdict::Hold);
        assert_eq!(a.assess(ms(6), 0, 2), ScaleVerdict::Hold);
        // Only 5 ms after the *reset* does the shrink fire.
        assert_eq!(a.assess(ms(10), 0, 2), ScaleVerdict::Hold);
        assert_eq!(a.assess(ms(11), 0, 2), ScaleVerdict::Shrink);
    }

    #[test]
    fn each_shrink_step_needs_its_own_quiet_patch() {
        let class = tight_class();
        let mut a = scaler(&class);
        assert_eq!(a.assess(ms(0), 0, 3), ScaleVerdict::Hold);
        assert_eq!(a.assess(ms(5), 0, 3), ScaleVerdict::Shrink);
        // Still idle, past cooldown, but the idle window restarted.
        assert_eq!(a.assess(ms(8), 0, 2), ScaleVerdict::Hold);
        assert_eq!(a.assess(ms(10), 0, 2), ScaleVerdict::Shrink);
    }

    #[test]
    fn the_pool_never_shrinks_below_one_machine() {
        let class = tight_class();
        let mut a = scaler(&class);
        assert_eq!(a.assess(ms(0), 0, 1), ScaleVerdict::Hold);
        for t in 1..100 {
            assert_eq!(
                a.assess(ms(t), 0, 1),
                ScaleVerdict::Hold,
                "idle forever at the floor still holds (t={t})"
            );
        }
    }

    #[test]
    fn a_full_scale_cycle_under_a_mock_clock() {
        // Load arrives → grow; load persists through cooldown → grow to
        // max; load drains → sustained idle shrinks back down to the
        // floor, one cooled-down step at a time.
        let class = tight_class();
        let mut a = scaler(&class);
        let mut machines = 1usize;
        let apply = |a: &mut Autoscaler, t: u64, keys: usize, m: &mut usize| match a.assess(
            ms(t),
            keys,
            *m,
        ) {
            ScaleVerdict::Grow => *m += 1,
            ScaleVerdict::Shrink => *m -= 1,
            ScaleVerdict::Hold => {}
        };
        apply(&mut a, 0, 1 << 13, &mut machines);
        apply(&mut a, 3, 1 << 13, &mut machines);
        assert_eq!(machines, 3, "grew to max under sustained overload");
        apply(&mut a, 6, 1 << 13, &mut machines);
        assert_eq!(machines, 3, "capped at max");
        // Queue drains; idle from t=10 ms.
        apply(&mut a, 10, 0, &mut machines);
        apply(&mut a, 15, 0, &mut machines);
        assert_eq!(machines, 2, "first shrink after 5 ms idle");
        apply(&mut a, 20, 0, &mut machines);
        assert_eq!(machines, 1, "second quiet patch shrinks to the floor");
        apply(&mut a, 30, 0, &mut machines);
        assert_eq!(machines, 1, "never below one machine");
    }

    #[test]
    fn drift_scales_the_drain_prediction() {
        // A backlog whose model drain sits just under the grow threshold:
        // the plain model holds, but a slow machine (drift > 1) pushes
        // the corrected prediction over it and grows early.
        let mut class = tight_class();
        class.default_deadline = Duration::from_secs(10);
        let mut a = scaler(&class);
        let keys = 1 << 10;
        let drain = a.predicted_drain(keys, 1);
        // Re-budget so the threshold lands 1.5x above the plain drain.
        a.budget = drain * 3;
        assert_eq!(a.assess_with_drift(ms(0), keys, 1, 1.0), ScaleVerdict::Hold);
        assert_eq!(a.assess_with_drift(ms(3), keys, 1, 2.0), ScaleVerdict::Grow);
        // Garbage drift values fall back to the plain model.
        let mut b = scaler(&class);
        b.budget = drain * 3;
        assert_eq!(
            b.assess_with_drift(ms(0), keys, 1, f64::NAN),
            ScaleVerdict::Hold
        );
    }

    #[test]
    #[should_panic(expected = "serving floor")]
    fn a_zero_machine_floor_is_rejected() {
        let cfg = AutoscaleConfig {
            min_machines: 0,
            ..AutoscaleConfig::new()
        };
        cfg.validate();
    }
}
