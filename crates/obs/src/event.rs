//! The event model: spans, per-remap counter events, finished traces.
//!
//! Timestamps are nanoseconds since the machine's trace *epoch* — one
//! `Instant` taken before any rank starts, shared by every sink — so
//! events from different ranks land on one common timeline.

/// Number of trace phases: the five execution phases mirroring
/// `spmd::Phase::ALL`, the two fault-recovery phases (`Retry`, `Stall`)
/// that only appear under fault injection, the four serving-layer
/// phases (`Queue`, `Batch`, `Run`, `Scatter`) recorded by the sort
/// service's dispatcher, the three sharding phases (`Route`,
/// `Steal`, `Scale`) recorded by the sharded service's router and
/// per-shard workers, and the two bulk-sort phases (`Split`, `Merge`)
/// recorded when an over-band request is scattered across shards and
/// its sorted partitions are reassembled.
pub const PHASES: usize = 16;

/// The execution phase a span belongs to.
///
/// The first five variants mirror `spmd::Phase` without depending on it
/// (the dependency points the other way: `spmd` records into this crate's
/// sinks). `Retry` and `Stall` are recorded only by the fault-injection
/// layer: retransmission work and injected/observed stall intervals.
/// `Retry` spans happen *inside* `Transfer` windows, so their time is a
/// subset of transfer time, not an addition to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracePhase {
    /// Purely local computation (sorts, merges, compare-exchange steps).
    Compute,
    /// Gathering elements into per-destination messages.
    Pack,
    /// Channel transfer (send + receive, minus any nested pack/unpack).
    Transfer,
    /// Scattering received elements to their local addresses.
    Unpack,
    /// Time blocked in barriers.
    Barrier,
    /// Retransmitting payloads a peer reported missing (fault injection).
    Retry,
    /// An injected whole-rank stall, or the terminal wait that preceded a
    /// `RankFailure` (fault injection).
    Stall,
    /// A request waiting in the service submission queue (serving layer).
    Queue,
    /// Coalescing queued requests into one tagged batch (serving layer).
    Batch,
    /// A batch executing on a warm SPMD machine (serving layer).
    Run,
    /// Splitting a sorted batch back into per-request replies (serving
    /// layer).
    Scatter,
    /// Routing a submitted request to its size-class shard (sharded
    /// serving).
    Route,
    /// An idle shard claiming a batch from an overloaded neighbor's
    /// queue (sharded serving, work stealing).
    Steal,
    /// A shard growing or shrinking its warm pool under the autoscaler
    /// (sharded serving).
    Scale,
    /// Selecting splitters for an over-band request and scattering its
    /// keys into per-shard sub-requests (bulk sorts).
    Split,
    /// The k-way merge reassembling a bulk request's sorted partitions
    /// into one ordered reply (bulk sorts).
    Merge,
}

impl TracePhase {
    /// All phases, in reporting order.
    pub const ALL: [TracePhase; PHASES] = [
        TracePhase::Compute,
        TracePhase::Pack,
        TracePhase::Transfer,
        TracePhase::Unpack,
        TracePhase::Barrier,
        TracePhase::Retry,
        TracePhase::Stall,
        TracePhase::Queue,
        TracePhase::Batch,
        TracePhase::Run,
        TracePhase::Scatter,
        TracePhase::Route,
        TracePhase::Steal,
        TracePhase::Scale,
        TracePhase::Split,
        TracePhase::Merge,
    ];

    /// The five paper phases every normal run records (`Retry`/`Stall`
    /// appear only under fault injection — validation that demands one
    /// span per phase must iterate this set, not [`TracePhase::ALL`]).
    pub const CORE: [TracePhase; 5] = [
        TracePhase::Compute,
        TracePhase::Pack,
        TracePhase::Transfer,
        TracePhase::Unpack,
        TracePhase::Barrier,
    ];

    /// Stable index into `[_; PHASES]` arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            TracePhase::Compute => 0,
            TracePhase::Pack => 1,
            TracePhase::Transfer => 2,
            TracePhase::Unpack => 3,
            TracePhase::Barrier => 4,
            TracePhase::Retry => 5,
            TracePhase::Stall => 6,
            TracePhase::Queue => 7,
            TracePhase::Batch => 8,
            TracePhase::Run => 9,
            TracePhase::Scatter => 10,
            TracePhase::Route => 11,
            TracePhase::Steal => 12,
            TracePhase::Scale => 13,
            TracePhase::Split => 14,
            TracePhase::Merge => 15,
        }
    }

    /// Lower-case display name (also the Chrome trace event name).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Compute => "compute",
            TracePhase::Pack => "pack",
            TracePhase::Transfer => "transfer",
            TracePhase::Unpack => "unpack",
            TracePhase::Barrier => "barrier",
            TracePhase::Retry => "retry",
            TracePhase::Stall => "stall",
            TracePhase::Queue => "queue",
            TracePhase::Batch => "batch",
            TracePhase::Run => "run",
            TracePhase::Scatter => "scatter",
            TracePhase::Route => "route",
            TracePhase::Steal => "steal",
            TracePhase::Scale => "scale",
            TracePhase::Split => "split",
            TracePhase::Merge => "merge",
        }
    }
}

/// What one communication step cost a rank — the Section 3.4 metrics,
/// mirrored from `spmd::RemapRecord` so counter events are self-contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemapCounters {
    /// Elements sent to other ranks (per-remap contribution to `V`).
    pub elements_sent: u64,
    /// Elements kept locally.
    pub elements_kept: u64,
    /// Non-empty messages sent (per-remap contribution to `M`).
    pub messages_sent: u64,
    /// Elements received from other ranks.
    pub elements_received: u64,
    /// Size of the communication group (0 when not applicable).
    pub group_size: u64,
}

impl RemapCounters {
    /// Merge `other` into the field-wise maximum — the per-step critical
    /// path over ranks.
    pub fn max_merge(&mut self, other: &RemapCounters) {
        self.elements_sent = self.elements_sent.max(other.elements_sent);
        self.elements_kept = self.elements_kept.max(other.elements_kept);
        self.messages_sent = self.messages_sent.max(other.messages_sent);
        self.elements_received = self.elements_received.max(other.elements_received);
        self.group_size = self.group_size.max(other.group_size);
    }
}

/// One timed interval on a rank's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which phase the interval belongs to.
    pub phase: TracePhase,
    /// Algorithm step the driver was in (driver-defined; 0 before any
    /// [`crate::TraceSink::set_step`] call).
    pub step: u32,
    /// Communication steps completed when the span was recorded — spans
    /// belonging to remap `i` (and the compute/barrier leading into it)
    /// carry index `i`.
    pub remap_index: u32,
    /// Start, nanoseconds since the machine epoch.
    pub t0_ns: u64,
    /// End, nanoseconds since the machine epoch.
    pub t1_ns: u64,
}

impl Span {
    /// The span's duration in nanoseconds.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.t1_ns.saturating_sub(self.t0_ns)
    }
}

/// The R/V/M record of one completed communication step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterEvent {
    /// Algorithm step the driver was in.
    pub step: u32,
    /// Index of the completed remap (0-based, dense).
    pub remap_index: u32,
    /// Completion time, nanoseconds since the machine epoch.
    pub at_ns: u64,
    /// What the step cost this rank.
    pub counters: RemapCounters,
}

/// A local-kernel usage record: `count` invocations of the named
/// compare/sort kernel since the previous kernel event on this rank.
///
/// Emitted by the SPMD drivers after each compute phase, so a trace shows
/// *which* kernel (radix, iterative bitonic network, circular merge,
/// merge network) served each phase of the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelEvent {
    /// Stable kernel name (`local_sorts::Kernel::name`).
    pub name: &'static str,
    /// Invocations attributed to this point on the timeline.
    pub count: u64,
    /// Algorithm step the driver was in.
    pub step: u32,
    /// Communication steps completed when the event was recorded.
    pub remap_index: u32,
    /// Recording time, nanoseconds since the machine epoch.
    pub at_ns: u64,
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A timed phase interval.
    Span(Span),
    /// A completed communication step's metrics.
    Counter(CounterEvent),
    /// Local-kernel invocations attributed to the current phase.
    Kernel(KernelEvent),
}

/// A rank's finished trace, harvested when its program returns.
#[derive(Debug, Clone, Default)]
pub struct RankTrace {
    /// The rank that recorded these events.
    pub rank: usize,
    /// Events in recording order (spans ordered by end time).
    pub events: Vec<Event>,
    /// Events discarded because the ring was full (drop-oldest policy).
    pub dropped: u64,
}

impl RankTrace {
    /// Iterate over the spans in recording order.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.events.iter().filter_map(|e| match e {
            Event::Span(s) => Some(s),
            _ => None,
        })
    }

    /// Iterate over the counter events in recording order.
    pub fn counters(&self) -> impl Iterator<Item = &CounterEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::Counter(c) => Some(c),
            _ => None,
        })
    }

    /// Iterate over the kernel events in recording order.
    pub fn kernels(&self) -> impl Iterator<Item = &KernelEvent> {
        self.events.iter().filter_map(|e| match e {
            Event::Kernel(k) => Some(k),
            _ => None,
        })
    }
}
