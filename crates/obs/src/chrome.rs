//! Chrome trace-event JSON export.
//!
//! Emits the [trace-event format] understood by Perfetto and
//! `chrome://tracing`: one *process* per rank, phase spans as complete
//! (`"ph": "X"`) events on the rank's timeline, and each communication
//! step's R/V/M record as counter (`"ph": "C"`) series. Timestamps are
//! microseconds since the machine epoch.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::{Event, RankTrace};
use std::fmt::Write;

/// Render `traces` (one per rank) as a Chrome trace JSON document.
///
/// The output is a complete `{"traceEvents": [...]}` object; write it to
/// a `.json` file and open it in [ui.perfetto.dev](https://ui.perfetto.dev)
/// or `chrome://tracing`.
#[must_use]
pub fn chrome_trace_json(traces: &[RankTrace]) -> String {
    let events: usize = traces.iter().map(|t| t.events.len()).sum();
    // ~160 bytes per rendered event.
    let mut out = String::with_capacity(64 + 160 * events);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: &str, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(s);
    };

    for trace in traces {
        let pid = trace.rank;
        push(
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"rank {pid}\"}}}}"
            ),
            &mut out,
        );
        // Always present, even at zero: a viewer (or a script grepping
        // the JSON) can tell "nothing dropped" from "metadata missing".
        push(
            &format!(
                "{{\"name\":\"dropped events\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"dropped\":{}}}}}",
                trace.dropped
            ),
            &mut out,
        );
        for event in &trace.events {
            let mut line = String::with_capacity(160);
            match event {
                Event::Span(s) => {
                    write!(
                        line,
                        "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":{pid},\
                         \"tid\":0,\"ts\":{:.3},\"dur\":{:.3},\
                         \"args\":{{\"step\":{},\"remap\":{}}}}}",
                        s.phase.name(),
                        s.t0_ns as f64 / 1e3,
                        s.duration_ns() as f64 / 1e3,
                        s.step,
                        s.remap_index,
                    )
                    .expect("write to String cannot fail");
                }
                Event::Counter(c) => {
                    write!(
                        line,
                        "{{\"name\":\"remap R/V/M\",\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\
                         \"ts\":{:.3},\"args\":{{\"elements_sent\":{},\"elements_kept\":{},\
                         \"messages_sent\":{},\"elements_received\":{},\"group_size\":{},\
                         \"step\":{},\"remap\":{}}}}}",
                        c.at_ns as f64 / 1e3,
                        c.counters.elements_sent,
                        c.counters.elements_kept,
                        c.counters.messages_sent,
                        c.counters.elements_received,
                        c.counters.group_size,
                        c.step,
                        c.remap_index,
                    )
                    .expect("write to String cannot fail");
                }
                Event::Kernel(k) => {
                    // Thread-scoped instant event: a marker on the rank's
                    // timeline naming the kernel that served the phase.
                    write!(
                        line,
                        "{{\"name\":\"kernel {}\",\"cat\":\"kernel\",\"ph\":\"i\",\"s\":\"t\",\
                         \"pid\":{pid},\"tid\":0,\"ts\":{:.3},\
                         \"args\":{{\"count\":{},\"step\":{},\"remap\":{}}}}}",
                        k.name,
                        k.at_ns as f64 / 1e3,
                        k.count,
                        k.step,
                        k.remap_index,
                    )
                    .expect("write to String cannot fail");
                }
            }
            push(&line, &mut out);
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterEvent, RemapCounters, Span, TracePhase};

    fn sample_traces() -> Vec<RankTrace> {
        (0..2)
            .map(|rank| RankTrace {
                rank,
                events: vec![
                    Event::Span(Span {
                        phase: TracePhase::Pack,
                        step: 1,
                        remap_index: 0,
                        t0_ns: 1_000,
                        t1_ns: 3_500,
                    }),
                    Event::Counter(CounterEvent {
                        step: 1,
                        remap_index: 0,
                        at_ns: 4_000,
                        counters: RemapCounters {
                            elements_sent: 12,
                            elements_kept: 4,
                            messages_sent: 3,
                            elements_received: 12,
                            group_size: 4,
                        },
                    }),
                    Event::Kernel(crate::event::KernelEvent {
                        name: "bitonic_net",
                        count: 3,
                        step: 1,
                        remap_index: 1,
                        at_ns: 5_000,
                    }),
                ],
                dropped: 0,
            })
            .collect()
    }

    #[test]
    fn exports_one_pid_per_rank() {
        let json = chrome_trace_json(&sample_traces());
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"name\":\"pack\""));
        assert!(json.contains("\"ts\":1.000,\"dur\":2.500"));
        assert!(json.contains("\"elements_sent\":12"));
        assert!(json.contains("\"name\":\"kernel bitonic_net\""));
        assert!(json.contains("\"count\":3"));
    }

    #[test]
    fn dropped_metadata_is_always_emitted() {
        let mut traces = sample_traces();
        let json = chrome_trace_json(&traces);
        assert!(
            json.contains("\"name\":\"dropped events\""),
            "zero drops still export the metadata record"
        );
        assert!(json.contains("\"args\":{\"dropped\":0}"));
        traces[1].dropped = 7;
        let json = chrome_trace_json(&traces);
        assert!(json.contains("\"args\":{\"dropped\":7}"));
    }

    #[test]
    fn output_is_balanced_json() {
        // Sanity: bracket/brace balance and no trailing commas. Loading in
        // Perfetto is exercised by the CI smoke job.
        let json = chrome_trace_json(&sample_traces());
        let mut depth = 0i64;
        for c in json.chars() {
            match c {
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!json.contains(",]") && !json.contains(",}"));
        assert!(!json.contains("},\n]"));
    }

    #[test]
    fn empty_machine_exports_empty_event_list() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\":["));
    }
}
