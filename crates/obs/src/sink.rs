//! The per-rank recorder: a preallocated event ring behind one branch.

use crate::event::{CounterEvent, Event, KernelEvent, RankTrace, RemapCounters, Span, TracePhase};
use std::time::Instant;

/// How (and whether) a machine run records traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record events at all? A disabled sink costs one branch per call.
    pub enabled: bool,
    /// Ring capacity in events, per rank. When the ring is full the oldest
    /// event is dropped and [`RankTrace::dropped`] incremented.
    pub capacity: usize,
}

impl TraceConfig {
    /// Default per-rank ring capacity (events). At ~2P spans per remap
    /// this holds hundreds of remaps even at P = 64.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Tracing off — the default for every ordinary run.
    #[must_use]
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 0,
        }
    }

    /// Tracing on with the default ring capacity.
    #[must_use]
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Tracing on with an explicit per-rank ring capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig {
            enabled: capacity > 0,
            capacity,
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// One rank's event recorder.
///
/// Strictly rank-private (each SPMD thread owns its sink outright), so
/// recording is lock-free by construction: a bounds check and an array
/// write. The ring is allocated once, up front; recording never
/// allocates. Timestamps are taken by the *caller* (the instrumentation
/// reuses the `Instant`s it already reads for `CommStats`), so an enabled
/// sink adds no clock reads and a disabled one reduces every call to a
/// single branch.
#[derive(Debug)]
pub struct TraceSink {
    enabled: bool,
    rank: usize,
    epoch: Instant,
    ring: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
    step: u32,
    remaps: u32,
}

impl TraceSink {
    /// A sink that records nothing (every call is one branch).
    #[must_use]
    pub fn disabled() -> Self {
        TraceSink {
            enabled: false,
            rank: 0,
            epoch: Instant::now(),
            ring: Vec::new(),
            capacity: 0,
            head: 0,
            dropped: 0,
            step: 0,
            remaps: 0,
        }
    }

    /// A recording sink for `rank`, with the ring preallocated to
    /// `config.capacity` events. `epoch` must be shared by every rank of
    /// the machine so their timelines align.
    #[must_use]
    pub fn new(rank: usize, config: TraceConfig, epoch: Instant) -> Self {
        if !config.enabled || config.capacity == 0 {
            let mut s = Self::disabled();
            s.rank = rank;
            s.epoch = epoch;
            return s;
        }
        TraceSink {
            enabled: true,
            rank,
            epoch,
            ring: Vec::with_capacity(config.capacity),
            capacity: config.capacity,
            head: 0,
            dropped: 0,
            step: 0,
            remaps: 0,
        }
    }

    /// Whether this sink records events.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The rank this sink belongs to.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Tag subsequent events with algorithm step `step` (driver-defined:
    /// schedule phase, radix pass, hypercube stage, …).
    #[inline]
    pub fn set_step(&mut self, step: u32) {
        self.step = step;
    }

    /// The current algorithm step tag.
    #[must_use]
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Communication steps recorded so far — the `remap_index` that spans
    /// recorded now will carry.
    #[must_use]
    pub fn remap_index(&self) -> u32 {
        self.remaps
    }

    /// Events dropped so far under the drop-oldest overflow policy.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Record a span covering `[t0, t1]` in `phase`. Zero-length spans are
    /// discarded; both instants must come from after the machine epoch.
    #[inline]
    pub fn span(&mut self, phase: TracePhase, t0: Instant, t1: Instant) {
        if !self.enabled {
            return;
        }
        let t0_ns = self.since_epoch_ns(t0);
        let t1_ns = self.since_epoch_ns(t1);
        if t1_ns <= t0_ns {
            return;
        }
        self.push(Event::Span(Span {
            phase,
            step: self.step,
            remap_index: self.remaps,
            t0_ns,
            t1_ns,
        }));
    }

    /// Record the completion of a communication step at `at` and advance
    /// the remap index.
    #[inline]
    pub fn counter(&mut self, counters: RemapCounters, at: Instant) {
        if !self.enabled {
            return;
        }
        let event = Event::Counter(CounterEvent {
            step: self.step,
            remap_index: self.remaps,
            at_ns: self.since_epoch_ns(at),
            counters,
        });
        self.remaps += 1;
        self.push(event);
    }

    /// Record `count` uses of local kernel `name` at `at`, attributed to
    /// the current step and remap index. Zero counts are discarded.
    #[inline]
    pub fn kernel(&mut self, name: &'static str, count: u64, at: Instant) {
        if !self.enabled || count == 0 {
            return;
        }
        self.push(Event::Kernel(KernelEvent {
            name,
            count,
            step: self.step,
            remap_index: self.remaps,
            at_ns: self.since_epoch_ns(at),
        }));
    }

    /// Consume the sink into its finished trace, events in recording
    /// order (the ring is unrolled from its oldest entry).
    #[must_use]
    pub fn finish(mut self) -> RankTrace {
        if self.head > 0 {
            self.ring.rotate_left(self.head);
        }
        RankTrace {
            rank: self.rank,
            events: self.ring,
            dropped: self.dropped,
        }
    }

    /// Harvest everything recorded so far into a [`RankTrace`] and reset
    /// the sink for the next recording interval, keeping it alive.
    ///
    /// This is the long-lived-machine counterpart of
    /// [`TraceSink::finish`]: a persistent rank runs many jobs through one
    /// sink and drains it between jobs, so each job gets its own trace.
    /// The ring is re-allocated at full capacity, the drop counter, step
    /// tag and remap index reset to zero; the epoch is unchanged so traces
    /// from successive drains stay on one machine-wide timeline.
    #[must_use]
    pub fn drain(&mut self) -> RankTrace {
        if self.head > 0 {
            self.ring.rotate_left(self.head);
            self.head = 0;
        }
        let events = std::mem::replace(&mut self.ring, Vec::with_capacity(self.capacity));
        let dropped = std::mem::take(&mut self.dropped);
        self.step = 0;
        self.remaps = 0;
        RankTrace {
            rank: self.rank,
            events,
            dropped,
        }
    }

    fn since_epoch_ns(&self, t: Instant) -> u64 {
        u64::try_from(t.saturating_duration_since(self.epoch).as_nanos()).unwrap_or(u64::MAX)
    }

    fn push(&mut self, event: Event) {
        if self.ring.len() < self.capacity {
            self.ring.push(event);
        } else {
            // Full: overwrite the oldest event (drop-oldest policy).
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn t(epoch: Instant, ns: u64) -> Instant {
        epoch + Duration::from_nanos(ns)
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let epoch = Instant::now();
        let mut s = TraceSink::disabled();
        s.span(TracePhase::Compute, t(epoch, 0), t(epoch, 100));
        s.counter(RemapCounters::default(), t(epoch, 200));
        assert!(!s.is_enabled());
        let trace = s.finish();
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn spans_carry_step_and_remap_index() {
        let epoch = Instant::now();
        let mut s = TraceSink::new(3, TraceConfig::on(), epoch);
        s.set_step(7);
        s.span(TracePhase::Pack, t(epoch, 10), t(epoch, 20));
        s.counter(
            RemapCounters {
                elements_sent: 5,
                ..Default::default()
            },
            t(epoch, 25),
        );
        s.span(TracePhase::Compute, t(epoch, 30), t(epoch, 40));
        let trace = s.finish();
        assert_eq!(trace.rank, 3);
        let spans: Vec<&Span> = trace.spans().collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            (spans[0].phase, spans[0].step, spans[0].remap_index),
            (TracePhase::Pack, 7, 0)
        );
        assert_eq!(spans[1].remap_index, 1, "after the counter");
        let counters: Vec<_> = trace.counters().collect();
        assert_eq!(counters.len(), 1);
        assert_eq!(counters[0].remap_index, 0);
        assert_eq!(counters[0].counters.elements_sent, 5);
    }

    #[test]
    fn kernel_events_carry_tags_and_skip_zero_counts() {
        let epoch = Instant::now();
        let mut s = TraceSink::new(1, TraceConfig::on(), epoch);
        s.set_step(3);
        s.kernel("radix", 0, t(epoch, 5));
        assert!(s.is_empty(), "zero-count kernel events are discarded");
        s.kernel("bitonic_net", 4, t(epoch, 10));
        s.counter(RemapCounters::default(), t(epoch, 20));
        s.kernel("radix", 1, t(epoch, 30));
        let trace = s.finish();
        let kernels: Vec<_> = trace.kernels().collect();
        assert_eq!(kernels.len(), 2);
        assert_eq!(
            (
                kernels[0].name,
                kernels[0].count,
                kernels[0].step,
                kernels[0].remap_index
            ),
            ("bitonic_net", 4, 3, 0)
        );
        assert_eq!(kernels[1].remap_index, 1, "after the counter");
    }

    #[test]
    fn zero_length_spans_are_discarded() {
        let epoch = Instant::now();
        let mut s = TraceSink::new(0, TraceConfig::on(), epoch);
        s.span(TracePhase::Transfer, t(epoch, 50), t(epoch, 50));
        assert!(s.is_empty());
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let epoch = Instant::now();
        let mut s = TraceSink::new(0, TraceConfig::with_capacity(4), epoch);
        for i in 0..10u64 {
            s.span(
                TracePhase::Compute,
                t(epoch, i * 100),
                t(epoch, i * 100 + 50),
            );
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.dropped(), 6);
        let trace = s.finish();
        let starts: Vec<u64> = trace.spans().map(|sp| sp.t0_ns).collect();
        assert_eq!(starts, vec![600, 700, 800, 900], "latest events survive");
        assert_eq!(trace.dropped, 6);
    }

    #[test]
    fn drain_resets_for_the_next_interval() {
        let epoch = Instant::now();
        let mut s = TraceSink::new(2, TraceConfig::with_capacity(4), epoch);
        s.set_step(5);
        for i in 0..6u64 {
            s.span(
                TracePhase::Compute,
                t(epoch, i * 100),
                t(epoch, i * 100 + 50),
            );
        }
        let first = s.drain();
        assert_eq!(first.rank, 2);
        assert_eq!(first.events.len(), 4);
        assert_eq!(first.dropped, 2);
        let starts: Vec<u64> = first.spans().map(|sp| sp.t0_ns).collect();
        assert_eq!(starts, vec![200, 300, 400, 500], "unrolled from oldest");
        // The sink is reset but still usable: fresh step/remap tags, empty
        // ring, zero drop count — and the shared epoch is unchanged.
        assert!(s.is_empty());
        assert_eq!((s.step(), s.remap_index(), s.dropped()), (0, 0, 0));
        s.span(TracePhase::Run, t(epoch, 1000), t(epoch, 1100));
        let second = s.drain();
        assert_eq!(second.events.len(), 1);
        assert_eq!(second.dropped, 0);
        assert_eq!(second.spans().next().unwrap().t0_ns, 1000);
    }

    #[test]
    fn capacity_zero_config_disables() {
        let s = TraceSink::new(1, TraceConfig::with_capacity(0), Instant::now());
        assert!(!s.is_enabled());
    }
}
