//! Span aggregation: phase totals and per-step critical paths.
//!
//! These passes recompute the thesis's reporting tables directly from the
//! recorded spans instead of trusting a separately maintained stopwatch —
//! if the two ever disagree, the instrumentation is wrong and the
//! property tests catch it.

use crate::event::{RankTrace, RemapCounters, PHASES};

/// Per-phase totals in nanoseconds, indexed by [`crate::TracePhase::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTotals {
    /// Summed span durations per phase, nanoseconds.
    pub ns: [u64; PHASES],
    /// Number of spans contributing per phase.
    pub spans: [u64; PHASES],
}

impl PhaseTotals {
    /// Total across all phases, nanoseconds.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Pack + Transfer + Unpack + Barrier, nanoseconds (mirrors
    /// `CommStats::communication_time`).
    #[must_use]
    pub fn communication_ns(&self) -> u64 {
        self.ns[1] + self.ns[2] + self.ns[3] + self.ns[4]
    }
}

/// Sum one rank's span durations per phase.
#[must_use]
pub fn rank_phase_totals(trace: &RankTrace) -> PhaseTotals {
    let mut totals = PhaseTotals::default();
    for span in trace.spans() {
        let i = span.phase.index();
        totals.ns[i] += span.duration_ns();
        totals.spans[i] += 1;
    }
    totals
}

/// Per-phase critical path over ranks: for each phase, the *maximum* of
/// the per-rank totals (the rank that gated that phase), with the span
/// count taken from the same gating rank.
#[must_use]
pub fn critical_phase_totals(traces: &[RankTrace]) -> PhaseTotals {
    let mut crit = PhaseTotals::default();
    for trace in traces {
        let t = rank_phase_totals(trace);
        for i in 0..PHASES {
            if t.ns[i] > crit.ns[i] {
                crit.ns[i] = t.ns[i];
                crit.spans[i] = t.spans[i];
            }
        }
    }
    crit
}

/// One communication step's critical path, reconstructed from spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepBreakdown {
    /// The dense remap index this row describes.
    pub remap_index: u32,
    /// Driver step tag (max over ranks; drivers tag uniformly).
    pub step: u32,
    /// Per-phase critical path: max over ranks of each rank's summed span
    /// time at this remap index, nanoseconds.
    pub phase_ns: [u64; PHASES],
    /// Field-wise max of the ranks' R/V/M records for this step.
    pub counters: RemapCounters,
    /// Whether any rank recorded a counter event at this index.
    pub has_counters: bool,
}

impl StepBreakdown {
    /// Pack + Transfer + Unpack + Barrier for this step, nanoseconds.
    #[must_use]
    pub fn communication_ns(&self) -> u64 {
        self.phase_ns[1] + self.phase_ns[2] + self.phase_ns[3] + self.phase_ns[4]
    }
}

/// Reconstruct the per-step critical path across the machine.
///
/// For every remap index that appears in any trace: sum each rank's span
/// durations at that index per phase, take the per-phase maximum over
/// ranks, and max-merge the ranks' counter records. Rows come back dense
/// and ordered by remap index (indices nobody recorded stay all-zero).
#[must_use]
pub fn step_breakdowns(traces: &[RankTrace]) -> Vec<StepBreakdown> {
    let steps = traces
        .iter()
        .flat_map(|t| {
            t.spans()
                .map(|s| s.remap_index)
                .chain(t.counters().map(|c| c.remap_index))
        })
        .max()
        .map_or(0, |max| max as usize + 1);
    let mut rows: Vec<StepBreakdown> = (0..steps)
        .map(|i| StepBreakdown {
            remap_index: i as u32,
            ..Default::default()
        })
        .collect();

    for trace in traces {
        // This rank's per-step, per-phase sums…
        let mut ns = vec![[0u64; PHASES]; steps];
        for span in trace.spans() {
            ns[span.remap_index as usize][span.phase.index()] += span.duration_ns();
        }
        // …folded into the machine rows as a per-phase max.
        for (row, rank_ns) in rows.iter_mut().zip(&ns) {
            for (total, &rank_total) in row.phase_ns.iter_mut().zip(rank_ns) {
                *total = (*total).max(rank_total);
            }
        }
        for c in trace.counters() {
            let row = &mut rows[c.remap_index as usize];
            row.counters.max_merge(&c.counters);
            row.step = row.step.max(c.step);
            row.has_counters = true;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CounterEvent, Event, Span, TracePhase};

    fn span(phase: TracePhase, remap: u32, t0: u64, t1: u64) -> Event {
        Event::Span(Span {
            phase,
            step: 1,
            remap_index: remap,
            t0_ns: t0,
            t1_ns: t1,
        })
    }

    fn counter(remap: u32, sent: u64, msgs: u64) -> Event {
        Event::Counter(CounterEvent {
            step: 1,
            remap_index: remap,
            at_ns: 0,
            counters: RemapCounters {
                elements_sent: sent,
                messages_sent: msgs,
                ..Default::default()
            },
        })
    }

    fn machine() -> Vec<RankTrace> {
        vec![
            RankTrace {
                rank: 0,
                events: vec![
                    span(TracePhase::Pack, 0, 0, 100),
                    span(TracePhase::Transfer, 0, 100, 400),
                    counter(0, 10, 2),
                    span(TracePhase::Compute, 1, 400, 1000),
                ],
                dropped: 0,
            },
            RankTrace {
                rank: 1,
                events: vec![
                    span(TracePhase::Pack, 0, 0, 250),
                    span(TracePhase::Pack, 0, 250, 300),
                    counter(0, 4, 7),
                ],
                dropped: 0,
            },
        ]
    }

    #[test]
    fn rank_totals_sum_durations_per_phase() {
        let t = rank_phase_totals(&machine()[0]);
        assert_eq!(t.ns[TracePhase::Pack.index()], 100);
        assert_eq!(t.ns[TracePhase::Transfer.index()], 300);
        assert_eq!(t.ns[TracePhase::Compute.index()], 600);
        assert_eq!(t.spans[TracePhase::Pack.index()], 1);
        assert_eq!(t.total_ns(), 1000);
        assert_eq!(t.communication_ns(), 400);
    }

    #[test]
    fn critical_totals_take_per_phase_max_over_ranks() {
        let crit = critical_phase_totals(&machine());
        // Rank 1 gates Pack (250 + 50 = 300 > 100), rank 0 everything else.
        assert_eq!(crit.ns[TracePhase::Pack.index()], 300);
        assert_eq!(
            crit.spans[TracePhase::Pack.index()],
            2,
            "gating rank's count"
        );
        assert_eq!(crit.ns[TracePhase::Transfer.index()], 300);
        assert_eq!(crit.ns[TracePhase::Compute.index()], 600);
    }

    #[test]
    fn step_breakdowns_are_dense_and_max_merged() {
        let rows = step_breakdowns(&machine());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].remap_index, 0);
        assert_eq!(rows[0].phase_ns[TracePhase::Pack.index()], 300);
        assert_eq!(rows[0].phase_ns[TracePhase::Transfer.index()], 300);
        assert!(rows[0].has_counters);
        // Field-wise max across ranks: sent from rank 0, msgs from rank 1.
        assert_eq!(rows[0].counters.elements_sent, 10);
        assert_eq!(rows[0].counters.messages_sent, 7);
        assert_eq!(rows[0].communication_ns(), 600);
        // Remap 1 only has rank 0's trailing compute, no counter yet.
        assert_eq!(rows[1].phase_ns[TracePhase::Compute.index()], 600);
        assert!(!rows[1].has_counters);
    }

    #[test]
    fn empty_machine_aggregates_to_nothing() {
        assert_eq!(critical_phase_totals(&[]), PhaseTotals::default());
        assert!(step_breakdowns(&[]).is_empty());
    }
}
