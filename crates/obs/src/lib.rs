//! Per-rank tracing: span timelines for the pack/transfer/unpack/barrier/
//! compute split the thesis's whole evaluation rests on.
//!
//! `spmd::CommStats` answers *how much* time each phase cost in total;
//! this crate answers *when* — which remap, which rank, which step sat on
//! the critical path. Every rank owns a [`TraceSink`]: a preallocated
//! event ring (drop-oldest on overflow, with a dropped-events counter)
//! recording [`Span`]s against a machine-wide monotonic epoch, plus one
//! [`CounterEvent`] per communication step carrying its R/V/M record.
//! Sinks are strictly rank-private — no locks, no atomics, no sharing —
//! and a disabled sink reduces every recording call to one branch, so the
//! hot paths cost nothing when tracing is off.
//!
//! On top of the raw events:
//!
//! * [`chrome`] — export a whole machine's traces as Chrome trace-event
//!   JSON (one pid per rank), loadable in Perfetto / `chrome://tracing`;
//! * [`aggregate`] — reconstruct per-rank phase totals and per-step
//!   critical paths directly from spans (the Table 5.4 split, without
//!   trusting any separately maintained stopwatch);
//! * [`metrics`] — the *live* plane: a lock-free registry of counters,
//!   gauges, and log-linear histograms (plus a rolling-window SLO
//!   tracker and an online LogP drift gauge) that the serving stack
//!   increments while traffic is in flight, exported as Prometheus text
//!   via [`encode_prometheus`] or structured snapshots.
//!
//! The crate is dependency-free (the build is offline) and knows nothing
//! about the SPMD machine: `spmd` pushes events in, reporting layers pull
//! summaries out.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod chrome;
pub mod event;
pub mod metrics;
pub mod sink;

pub use aggregate::{
    critical_phase_totals, rank_phase_totals, step_breakdowns, PhaseTotals, StepBreakdown,
};
pub use chrome::chrome_trace_json;
pub use event::{
    CounterEvent, Event, KernelEvent, RankTrace, RemapCounters, Span, TracePhase, PHASES,
};
pub use metrics::{
    encode_prometheus, Counter, DriftGauge, Gauge, Histogram, Registry, SloSnapshot, SloTracker,
    Snapshot,
};
pub use sink::{TraceConfig, TraceSink};
