//! Live metrics plane: lock-free counters, gauges, and log-linear
//! histograms behind a name/label registry, plus a rolling-window SLO
//! tracker and an online LogP drift gauge.
//!
//! Design rules (see DESIGN.md §10):
//!
//! * **Hot-path writes are a single relaxed atomic op.** Callers register
//!   a metric once (one short mutex hold in [`Registry`]) and keep the
//!   returned `Arc` handle; `Counter::inc`, `Gauge::set`, and
//!   `Histogram::observe` never lock.
//! * **Histograms are log-linear** (HDR-style): values below
//!   2^[`SUB_BITS`] land in exact unit buckets, larger values in
//!   2^[`SUB_BITS`] linear sub-buckets per power-of-two octave, so the
//!   relative width of any bucket is at most 2^-[`SUB_BITS`] (~3.1%).
//!   [`Histogram::quantile`] returns the upper bound of the bucket that
//!   contains the exact sample quantile, so its error is bounded by one
//!   bucket width.
//! * **Histograms merge exactly.** Buckets are added pairwise, so merging
//!   two histograms is indistinguishable from observing the concatenated
//!   sample streams (property-tested in `tests/metrics.rs`).
//! * **Reads are snapshots.** [`Registry::snapshot`] clones every value
//!   into plain structs; [`encode_prometheus`] is a pure function over a
//!   snapshot (text exposition format, version 0.0.4).
//!
//! The module has no dependencies and knows nothing about the sorting
//! machine; the service layer registers its own metrics and pushes into
//! them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sub-bucket resolution: 2^`SUB_BITS` linear buckets per octave.
pub const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Total bucket count for the full `u64` range.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Index of the log-linear bucket that `v` falls into.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let offset = ((v >> (exp - SUB_BITS)) as usize) - SUB;
    ((exp - SUB_BITS + 1) as usize) * SUB + offset
}

/// Smallest value that maps to bucket `i`.
#[must_use]
pub fn bucket_lower(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let octave = i / SUB;
    let offset = (i % SUB) as u64;
    let exp = octave as u32 + SUB_BITS - 1;
    (1u64 << exp) + (offset << (exp - SUB_BITS))
}

/// Largest value that maps to bucket `i`.
#[must_use]
pub fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

/// Monotonically increasing event count. All operations are relaxed
/// atomics; totals are exact because increments never race-lose.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-writer-wins float value (queue depth, machine count, ratios).
/// Stored as `f64` bits in an `AtomicU64`; `set` is a plain store.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// New gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (compare-and-swap loop; rare path only).
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Log-linear histogram over `u64` samples with atomic buckets.
///
/// `observe` is three relaxed `fetch_add`s (bucket, count, sum); there is
/// no lock anywhere. Quantile error is bounded by one bucket's width
/// (relative error ≤ 2^-[`SUB_BITS`]); see the module docs.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram covering the full `u64` range.
    #[must_use]
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, AtomicU64::default);
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets,
        }
    }

    /// Record one sample.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a [`Duration`] in microseconds (saturating).
    pub fn observe_us(&self, d: Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps only after ~1.8e19 total).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Add every bucket of `other` into `self`. Merging preserves exact
    /// bucket counts, so `a.merge_from(&b)` is indistinguishable from
    /// having observed both sample streams into one histogram.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the rank-`ceil(q·count)` sample. Returns 0 when
    /// empty. The result lives in the same bucket as the exact sorted
    /// sample quantile, so `|approx − exact| ≤ exact >> SUB_BITS`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        quantile_of(&counts, q)
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs; the
    /// last entry's cumulative count equals [`Histogram::count`].
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }
}

/// Quantile over a plain bucket-count slice (shared with [`SloTracker`]).
fn quantile_of(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &n) in counts.iter().enumerate() {
        cum += n;
        if cum >= rank {
            return bucket_upper(i);
        }
    }
    bucket_upper(counts.len() - 1)
}

type Labels = Vec<(String, String)>;

fn label_key(labels: &[(&str, &str)]) -> String {
    let mut s = String::new();
    for (k, v) in labels {
        if !s.is_empty() {
            s.push(',');
        }
        s.push_str(k);
        s.push_str("=\"");
        s.push_str(v);
        s.push('"');
    }
    s
}

fn owned_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<(String, String), (Labels, Arc<Counter>)>,
    gauges: BTreeMap<(String, String), (Labels, Arc<Gauge>)>,
    histograms: BTreeMap<(String, String), (Labels, Arc<Histogram>)>,
    help: BTreeMap<String, String>,
}

/// Registry of named, labelled metrics.
///
/// The registry's mutex is held only during registration and snapshots;
/// the returned `Arc` handles write lock-free. Registering the same
/// `(name, labels)` pair twice returns the same handle, so registration
/// is idempotent.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// New empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a counter.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        assert_kind_free(&inner, name, Kind::Counter);
        inner
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
        inner
            .counters
            .entry((name.to_string(), label_key(labels)))
            .or_insert_with(|| (owned_labels(labels), Arc::new(Counter::new())))
            .1
            .clone()
    }

    /// Register (or look up) a gauge.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        assert_kind_free(&inner, name, Kind::Gauge);
        inner
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
        inner
            .gauges
            .entry((name.to_string(), label_key(labels)))
            .or_insert_with(|| (owned_labels(labels), Arc::new(Gauge::new())))
            .1
            .clone()
    }

    /// Register (or look up) a histogram.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        assert_kind_free(&inner, name, Kind::Histogram);
        inner
            .help
            .entry(name.to_string())
            .or_insert_with(|| help.to_string());
        inner
            .histograms
            .entry((name.to_string(), label_key(labels)))
            .or_insert_with(|| (owned_labels(labels), Arc::new(Histogram::new())))
            .1
            .clone()
    }

    /// Clone every metric's current value into a plain [`Snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|((name, _), (labels, c))| CounterSample {
                    name: name.clone(),
                    help: inner.help.get(name).cloned().unwrap_or_default(),
                    labels: labels.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|((name, _), (labels, g))| GaugeSample {
                    name: name.clone(),
                    help: inner.help.get(name).cloned().unwrap_or_default(),
                    labels: labels.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|((name, _), (labels, h))| HistogramSample {
                    name: name.clone(),
                    help: inner.help.get(name).cloned().unwrap_or_default(),
                    labels: labels.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                    buckets: h.cumulative_buckets(),
                })
                .collect(),
        }
    }
}

#[derive(PartialEq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

fn assert_kind_free(inner: &Inner, name: &str, kind: Kind) {
    let taken = |k: Kind| match k {
        Kind::Counter => inner.counters.keys().any(|(n, _)| n == name),
        Kind::Gauge => inner.gauges.keys().any(|(n, _)| n == name),
        Kind::Histogram => inner.histograms.keys().any(|(n, _)| n == name),
    };
    for other in [Kind::Counter, Kind::Gauge, Kind::Histogram] {
        if other != kind {
            assert!(
                !taken(other),
                "metric {name:?} already registered as a different kind"
            );
        }
    }
}

/// Point-in-time copy of a counter's value.
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Help text supplied at registration.
    pub help: String,
    /// Label pairs, in registration order.
    pub labels: Labels,
    /// Counter total.
    pub value: u64,
}

/// Point-in-time copy of a gauge's value.
#[derive(Debug, Clone)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Help text supplied at registration.
    pub help: String,
    /// Label pairs, in registration order.
    pub labels: Labels,
    /// Gauge value.
    pub value: f64,
}

/// Point-in-time copy of a histogram.
#[derive(Debug, Clone)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Help text supplied at registration.
    pub help: String,
    /// Label pairs, in registration order.
    pub labels: Labels,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Non-empty buckets as `(upper_bound, cumulative_count)`.
    pub buckets: Vec<(u64, u64)>,
}

/// Point-in-time copy of every metric in a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// All counters, sorted by (name, labels).
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by (name, labels).
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by (name, labels).
    pub histograms: Vec<HistogramSample>,
}

impl Snapshot {
    /// Sum of `name` across every label set (0 if absent).
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Sum of `name` across label sets containing `key=value`.
    #[must_use]
    pub fn counter_labeled(&self, name: &str, key: &str, value: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name && c.labels.iter().any(|(k, v)| k == key && v == value))
            .map(|c| c.value)
            .sum()
    }

    /// First gauge named `name` whose labels contain `key=value`.
    #[must_use]
    pub fn gauge_labeled(&self, name: &str, key: &str, value: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && g.labels.iter().any(|(k, v)| k == key && v == value))
            .map(|g| g.value)
    }

    /// Total sample count of histogram `name` across label sets.
    #[must_use]
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms
            .iter()
            .filter(|h| h.name == name)
            .map(|h| h.count)
            .sum()
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

/// Render a [`Snapshot`] in the Prometheus text exposition format
/// (version 0.0.4). Pure function; histogram series emit only non-empty
/// buckets (cumulative, increasing `le`) plus `+Inf`, `_sum`, `_count`.
#[must_use]
pub fn encode_prometheus(snap: &Snapshot) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut seen_header = String::new();
    let mut header = |out: &mut String, name: &str, help: &str, kind: &str| {
        if seen_header != name {
            seen_header = name.to_string();
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {kind}");
        }
    };
    for c in &snap.counters {
        header(&mut out, &c.name, &c.help, "counter");
        out.push_str(&c.name);
        render_labels(&mut out, &c.labels, None);
        let _ = writeln!(out, " {}", c.value);
    }
    for g in &snap.gauges {
        header(&mut out, &g.name, &g.help, "gauge");
        out.push_str(&g.name);
        render_labels(&mut out, &g.labels, None);
        let _ = writeln!(out, " {}", g.value);
    }
    for h in &snap.histograms {
        header(&mut out, &h.name, &h.help, "histogram");
        for (le, cum) in &h.buckets {
            let _ = write!(out, "{}_bucket", h.name);
            render_labels(&mut out, &h.labels, Some(("le", &le.to_string())));
            let _ = writeln!(out, " {cum}");
        }
        let _ = write!(out, "{}_bucket", h.name);
        render_labels(&mut out, &h.labels, Some(("le", "+Inf")));
        let _ = writeln!(out, " {}", h.count);
        let _ = write!(out, "{}_sum", h.name);
        render_labels(&mut out, &h.labels, None);
        let _ = writeln!(out, " {}", h.sum);
        let _ = write!(out, "{}_count", h.name);
        render_labels(&mut out, &h.labels, None);
        let _ = writeln!(out, " {}", h.count);
    }
    out
}

/// Online EWMA of measured-vs-predicted batch runtime (the live version
/// of the offline `DRIFT_1` report). A ratio above 1.0 means the machine
/// is running slower than the LogP model predicts; the autoscaler scales
/// its drain estimate by this ratio.
#[derive(Debug)]
pub struct DriftGauge {
    /// EWMA of measured/predicted, as `f64` bits.
    bits: AtomicU64,
    samples: AtomicU64,
    alpha: f64,
}

impl Default for DriftGauge {
    fn default() -> Self {
        Self::new(0.2)
    }
}

impl DriftGauge {
    /// New gauge with EWMA weight `alpha` in `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        Self {
            bits: AtomicU64::new(1f64.to_bits()),
            samples: AtomicU64::new(0),
            alpha,
        }
    }

    /// Fold in one `(predicted, measured)` pair. The first sample seeds
    /// the EWMA directly. Non-positive predictions are ignored.
    pub fn observe(&self, predicted: Duration, measured: Duration) {
        let p = predicted.as_secs_f64();
        if p <= 0.0 {
            return;
        }
        let ratio = measured.as_secs_f64() / p;
        let first = self.samples.fetch_add(1, Ordering::Relaxed) == 0;
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let prev = f64::from_bits(cur);
            let next = if first {
                ratio
            } else {
                prev + self.alpha * (ratio - prev)
            };
            match self.bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current EWMA ratio (1.0 before any sample).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Number of samples folded in.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }
}

/// One rotation slot of the SLO window.
#[derive(Clone)]
struct SloSlot {
    /// Which window index this slot currently holds.
    index: u64,
    buckets: Vec<u64>,
    completed: u64,
    shed: u64,
    expired: u64,
    failed: u64,
}

impl SloSlot {
    fn fresh(index: u64) -> Self {
        Self {
            index,
            buckets: vec![0; BUCKETS],
            completed: 0,
            shed: 0,
            expired: 0,
            failed: 0,
        }
    }

    fn reset(&mut self, index: u64) {
        self.index = index;
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.completed = 0;
        self.shed = 0;
        self.expired = 0;
        self.failed = 0;
    }
}

/// Rolling-window SLO tracker: per-window latency histogram plus
/// outcome counts, aggregated over the last `slots` windows.
///
/// Timestamps are caller-supplied elapsed [`Duration`]s (time since the
/// service started), which keeps the tracker deterministic under test.
/// Recording takes a short mutex — it runs once per *request* outcome,
/// off the per-key hot path, so it is invisible next to a batch sort.
pub struct SloTracker {
    window: Duration,
    slots: usize,
    budget: Duration,
    inner: Mutex<Vec<SloSlot>>,
}

impl SloTracker {
    /// Track the last `slots` windows of `window` length each, against a
    /// per-request latency `budget` (typically the default deadline).
    ///
    /// # Panics
    /// Panics if `slots` is zero or `window` is zero.
    #[must_use]
    pub fn new(window: Duration, slots: usize, budget: Duration) -> Self {
        assert!(slots > 0, "SloTracker needs at least one slot");
        assert!(!window.is_zero(), "SloTracker window must be non-zero");
        Self {
            window,
            slots,
            budget,
            inner: Mutex::new((0..slots as u64).map(SloSlot::fresh).collect()),
        }
    }

    /// Latency budget this tracker grades against.
    #[must_use]
    pub fn budget(&self) -> Duration {
        self.budget
    }

    fn slot<'a>(&self, inner: &'a mut [SloSlot], now: Duration) -> &'a mut SloSlot {
        let index = (now.as_nanos() / self.window.as_nanos()) as u64;
        let slot = &mut inner[(index as usize) % self.slots];
        if slot.index != index {
            slot.reset(index);
        }
        slot
    }

    /// Record a completed request's latency at elapsed time `now`.
    pub fn record_latency(&self, now: Duration, latency: Duration) {
        let mut inner = self.inner.lock().expect("slo tracker poisoned");
        let slot = self.slot(&mut inner, now);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        slot.buckets[bucket_index(us)] += 1;
        slot.completed += 1;
    }

    /// Record an admission shed at elapsed time `now`.
    pub fn record_shed(&self, now: Duration) {
        let mut inner = self.inner.lock().expect("slo tracker poisoned");
        self.slot(&mut inner, now).shed += 1;
    }

    /// Record a deadline expiry at elapsed time `now`.
    pub fn record_expired(&self, now: Duration) {
        let mut inner = self.inner.lock().expect("slo tracker poisoned");
        self.slot(&mut inner, now).expired += 1;
    }

    /// Record a machine failure at elapsed time `now`.
    pub fn record_failed(&self, now: Duration) {
        let mut inner = self.inner.lock().expect("slo tracker poisoned");
        self.slot(&mut inner, now).failed += 1;
    }

    /// Aggregate the windows still inside the horizon at `now`.
    #[must_use]
    pub fn snapshot(&self, now: Duration) -> SloSnapshot {
        let inner = self.inner.lock().expect("slo tracker poisoned");
        let index = (now.as_nanos() / self.window.as_nanos()) as u64;
        let oldest = index.saturating_sub(self.slots as u64 - 1);
        let mut buckets = vec![0u64; BUCKETS];
        let mut snap = SloSnapshot {
            horizon: self.window * self.slots as u32,
            budget: self.budget,
            ..SloSnapshot::default()
        };
        for slot in inner.iter() {
            if slot.index < oldest || slot.index > index {
                continue;
            }
            for (acc, n) in buckets.iter_mut().zip(&slot.buckets) {
                *acc += n;
            }
            snap.completed += slot.completed;
            snap.shed += slot.shed;
            snap.expired += slot.expired;
            snap.failed += slot.failed;
        }
        snap.p50_us = quantile_of(&buckets, 0.50);
        snap.p95_us = quantile_of(&buckets, 0.95);
        snap.p99_us = quantile_of(&buckets, 0.99);
        let offered = snap.completed + snap.shed + snap.expired + snap.failed;
        if offered > 0 {
            snap.shed_rate = snap.shed as f64 / offered as f64;
            snap.error_rate = (snap.expired + snap.failed) as f64 / offered as f64;
        }
        snap.within_budget =
            snap.completed == 0 || Duration::from_micros(snap.p99_us) <= self.budget;
        snap
    }
}

/// Aggregated SLO view over the tracker's rolling horizon.
#[derive(Debug, Clone, Default)]
pub struct SloSnapshot {
    /// Total span of the aggregated windows.
    pub horizon: Duration,
    /// Latency budget being graded against.
    pub budget: Duration,
    /// Requests completed in the horizon.
    pub completed: u64,
    /// Requests shed at admission in the horizon.
    pub shed: u64,
    /// Requests expired before running in the horizon.
    pub expired: u64,
    /// Requests failed by machine faults in the horizon.
    pub failed: u64,
    /// Median completed-request latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// shed / (completed + shed + expired + failed).
    pub shed_rate: f64,
    /// (expired + failed) / offered.
    pub error_rate: f64,
    /// Whether p99 is inside the budget (vacuously true when idle).
    pub within_budget: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_covers_u64() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 65, 1000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
            assert!(v <= bucket_upper(i), "upper({i}) < {v}");
        }
        // Boundaries are exclusive: each value maps to exactly one bucket.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32 {
            h.observe(v);
        }
        for q in [0.1, 0.5, 0.9] {
            let exact = ((q * 32.0_f64).ceil() as u64).clamp(1, 32) - 1;
            assert_eq!(h.quantile(q), exact);
        }
    }

    #[test]
    fn quantile_error_bounded() {
        let h = Histogram::new();
        let mut samples: Vec<u64> = (0..2000).map(|i| 100 + i * 37).collect();
        for &s in &samples {
            h.observe(s);
        }
        samples.sort_unstable();
        for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let approx = h.quantile(q);
            assert!(approx >= exact);
            assert!(
                approx - exact <= exact >> SUB_BITS,
                "q={q}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn registry_idempotent_and_kind_checked() {
        let r = Registry::new();
        let a = r.counter("x_total", "help", &[("class", "small")]);
        let b = r.counter("x_total", "help", &[("class", "small")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.counter_labeled("x_total", "class", "small"), 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_collision() {
        let r = Registry::new();
        let _ = r.counter("x_total", "help", &[]);
        let _ = r.gauge("x_total", "help", &[]);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("req_total", "requests", &[("class", "all")])
            .add(7);
        r.gauge("depth", "queue depth", &[]).set(3.0);
        let h = r.histogram("lat_us", "latency", &[("class", "all")]);
        h.observe(5);
        h.observe(100);
        let text = encode_prometheus(&r.snapshot());
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{class=\"all\"} 7"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth 3"));
        assert!(text.contains("lat_us_bucket{class=\"all\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_us_sum{class=\"all\"} 105"));
        assert!(text.contains("lat_us_count{class=\"all\"} 2"));
        // Cumulative buckets never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_us_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn drift_gauge_ewma() {
        let d = DriftGauge::new(0.5);
        assert_eq!(d.ratio(), 1.0);
        d.observe(Duration::from_micros(100), Duration::from_micros(200));
        assert!((d.ratio() - 2.0).abs() < 1e-9, "first sample seeds");
        d.observe(Duration::from_micros(100), Duration::from_micros(100));
        assert!((d.ratio() - 1.5).abs() < 1e-9, "ewma folds");
        assert_eq!(d.samples(), 2);
    }

    #[test]
    fn slo_window_rotates() {
        let t = SloTracker::new(Duration::from_secs(1), 2, Duration::from_millis(10));
        t.record_latency(Duration::from_millis(100), Duration::from_micros(500));
        t.record_shed(Duration::from_millis(200));
        let s = t.snapshot(Duration::from_millis(300));
        assert_eq!(s.completed, 1);
        assert_eq!(s.shed, 1);
        assert!(s.within_budget);
        assert!((s.shed_rate - 0.5).abs() < 1e-12);
        // Two windows later the events have aged out.
        let s = t.snapshot(Duration::from_secs(3));
        assert_eq!(s.completed, 0);
        assert_eq!(s.shed, 0);
        // Over-budget latency flips the flag.
        t.record_latency(Duration::from_secs(3), Duration::from_millis(50));
        let s = t.snapshot(Duration::from_secs(3));
        assert!(!s.within_budget);
    }
}
